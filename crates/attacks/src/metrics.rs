//! Key verification and attack-quality metrics.

use crate::coi::{affected_outputs, CoiMode};
use crate::encode::encode_keyed;
use gshe_camo::{CamoError, KeyedNetlist};
use gshe_logic::{Netlist, NodeId, PatternBlock, Simulator};
use gshe_sat::{CircuitEncoder, Lit, SolveResult, Solver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Verdict on a recovered key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyVerification {
    /// The key selects the defender's exact candidate at every cell.
    pub structurally_correct: bool,
    /// The resolved netlist is **provably** (SAT-checked) equivalent to the
    /// original — the attacker's actual success criterion.
    pub functionally_equivalent: bool,
    /// Fraction of 4096 random patterns on which the resolved netlist
    /// disagrees with the original (0.0 when equivalent).
    pub sampled_error_rate: f64,
}

/// Verifies a recovered key against the original design: exact SAT
/// equivalence of the resolved netlist plus a sampled error rate.
///
/// # Errors
///
/// Returns [`CamoError::KeyLengthMismatch`] if the key has the wrong width.
pub fn verify_key(
    original: &Netlist,
    keyed: &KeyedNetlist,
    key: &[bool],
) -> Result<KeyVerification, CamoError> {
    verify_key_scoped(original, keyed, key, CoiMode::Off)
}

/// [`verify_key`] with the equivalence proof scoped to the cone of
/// influence of the cloaked cells when `mode` engages on this design.
///
/// Resolution rewrites only the cloaked cells, so any output no cell
/// reaches computes the same function of the primary inputs in both
/// netlists by construction — the SAT proof need cover only the
/// affected outputs' fanin cones. On superblue-scale designs that turns
/// a full-width UNSAT proof (the dominant cost of a campaign attack
/// cell once the DIP loop itself runs on the cone) into one over a
/// few-thousand-node cone. The verdict is identical to [`verify_key`]'s;
/// [`CoiMode::Off`] (or a design below the threshold, or a degenerate
/// affected set) falls back to the full-interface miter.
///
/// # Errors
///
/// Returns [`CamoError::KeyLengthMismatch`] if the key has the wrong width.
pub fn verify_key_scoped(
    original: &Netlist,
    keyed: &KeyedNetlist,
    key: &[bool],
    mode: CoiMode,
) -> Result<KeyVerification, CamoError> {
    let resolved = keyed.resolve(key)?;
    let functionally_equivalent = match affected_outputs(keyed, mode) {
        Some(outputs) => sat_equivalent_on(original, &resolved, &outputs),
        None => sat_equivalent(original, &resolved),
    };
    let sampled_error_rate = if functionally_equivalent {
        0.0
    } else {
        sampled_error(original, &resolved, 64)
    };
    Ok(KeyVerification {
        structurally_correct: keyed.key_is_structurally_correct(key),
        functionally_equivalent,
        sampled_error_rate,
    })
}

/// Exact combinational equivalence via a SAT miter (both netlists must have
/// identical interfaces).
pub fn sat_equivalent(a: &Netlist, b: &Netlist) -> bool {
    assert_eq!(a.inputs().len(), b.inputs().len(), "interface mismatch");
    assert_eq!(a.outputs().len(), b.outputs().len(), "interface mismatch");
    let mut solver = Solver::new();
    let diff = {
        let mut enc = CircuitEncoder::new(&mut solver);
        let ca = encode_plain(&mut enc, a);
        let cb = encode_plain(&mut enc, b);
        for (x, y) in ca.0.iter().zip(&cb.0) {
            enc.equal(*x, *y);
        }
        enc.miter(&ca.1, &cb.1)
    };
    solver.add_clause(&[diff]);
    solver.solve() == SolveResult::Unsat
}

/// Exact equivalence of `a` and `b` restricted to `outputs` (node ids
/// valid in both netlists — they must share an id space, as an original
/// and its resolved keyed clone do). Each side contributes the fanin
/// cone of those outputs; primary inputs present in both cones are
/// unified, and an input only one side reads stays free — if the other
/// side truly ignores it the miter stays UNSAT, and any dependence it
/// could witness is a real inequivalence.
pub fn sat_equivalent_on(a: &Netlist, b: &Netlist, outputs: &[NodeId]) -> bool {
    let (ca, ma) = a.cone_of(outputs);
    let (cb, mb) = b.cone_of(outputs);
    let mut solver = Solver::new();
    let diff = {
        let mut enc = CircuitEncoder::new(&mut solver);
        let (ia, oa) = encode_plain(&mut enc, &ca);
        let (ib, ob) = encode_plain(&mut enc, &cb);
        let by_full: HashMap<usize, Lit> = ca
            .inputs()
            .iter()
            .zip(&ia)
            .map(|(&n, &lit)| (ma.to_full(n).index(), lit))
            .collect();
        for (&n, &lit) in cb.inputs().iter().zip(&ib) {
            if let Some(&la) = by_full.get(&mb.to_full(n).index()) {
                enc.equal(la, lit);
            }
        }
        enc.miter(&oa, &ob)
    };
    solver.add_clause(&[diff]);
    solver.solve() == SolveResult::Unsat
}

/// Encodes an ordinary netlist; returns (input lits, output lits).
fn encode_plain(enc: &mut CircuitEncoder<'_, Solver>, nl: &Netlist) -> (Vec<Lit>, Vec<Lit>) {
    // Reuse the keyed encoder with an empty key by wrapping the netlist in
    // a keyless KeyedNetlist.
    let keyed = KeyedNetlist::new(nl.clone(), Vec::new(), 0);
    let copy = encode_keyed(enc, &keyed, &[]);
    (copy.inputs, copy.outputs)
}

/// Fraction of `blocks`×64 random patterns where the two netlists disagree
/// on at least one output.
pub fn sampled_error(a: &Netlist, b: &Netlist, blocks: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(0xE44);
    let mut sim_a = Simulator::new(a);
    let mut sim_b = Simulator::new(b);
    let mut wrong = 0u64;
    let mut total = 0u64;
    for _ in 0..blocks {
        let block = PatternBlock::random(a.inputs().len(), &mut rng);
        let ya = sim_a.run(&block).expect("interface checked");
        let yb = sim_b.run(&block).expect("interface checked");
        let mut any_diff = 0u64;
        for (p, q) in ya.iter().zip(&yb) {
            any_diff |= p ^ q;
        }
        wrong += (any_diff & block.valid_mask()).count_ones() as u64;
        total += block.count as u64;
    }
    wrong as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use gshe_logic::Bf2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_netlists_are_equivalent() {
        let a = parse_bench(C17_BENCH).unwrap();
        let b = parse_bench(C17_BENCH).unwrap();
        assert!(sat_equivalent(&a, &b));
        assert_eq!(sampled_error(&a, &b, 4), 0.0);
    }

    #[test]
    fn mutated_netlist_is_not_equivalent() {
        let a = parse_bench(C17_BENCH).unwrap();
        let mut b = parse_bench(C17_BENCH).unwrap();
        let g = b.find("22").unwrap();
        b.set_gate2_function(g, Bf2::NOR).unwrap();
        assert!(!sat_equivalent(&a, &b));
        assert!(sampled_error(&a, &b, 4) > 0.0);
    }

    #[test]
    fn correct_key_verifies() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let v = verify_key(&nl, &keyed, &keyed.correct_key()).unwrap();
        assert!(v.structurally_correct);
        assert!(v.functionally_equivalent);
        assert_eq!(v.sampled_error_rate, 0.0);
    }

    #[test]
    fn wrong_key_fails_verification() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut key = keyed.correct_key();
        for b in key.iter_mut() {
            *b = !*b;
        }
        let v = verify_key(&nl, &keyed, &key).unwrap();
        assert!(!v.structurally_correct);
        assert!(!v.functionally_equivalent);
        assert!(v.sampled_error_rate > 0.0);
    }

    /// Cone-scoped verification returns the exact verdict of the
    /// full-interface proof, for correct keys, near-miss keys (one cell
    /// flipped), and fully wrong keys, on a netlist whose cloaked cells
    /// affect a proper subset of the outputs (so the scoping engages).
    #[test]
    fn scoped_verification_matches_full() {
        use gshe_logic::{GeneratorConfig, NetlistGenerator};
        let nl = NetlistGenerator::new(GeneratorConfig::new("sv", 12, 8, 120).with_seed(9))
            .unwrap()
            .generate();
        // Cloak an output gate directly: its influence is exactly the
        // outputs that read it — a proper subset — where a random
        // interior pick percolates to every output on this topology.
        let picks = vec![nl.outputs()[0]];
        let mut rng = StdRng::seed_from_u64(5);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        assert!(
            affected_outputs(&keyed, CoiMode::On).is_some(),
            "placement must give the scoped path a proper output subset"
        );
        let correct = keyed.correct_key();
        let mut near = correct.clone();
        near[0] = !near[0];
        let mut wrong = correct.clone();
        for b in wrong.iter_mut() {
            *b = !*b;
        }
        for key in [&correct, &near, &wrong] {
            let full = verify_key(&nl, &keyed, key).unwrap();
            let scoped = verify_key_scoped(&nl, &keyed, key, CoiMode::On).unwrap();
            assert_eq!(full, scoped, "verdicts diverged for key {key:?}");
        }
    }

    #[test]
    fn key_width_is_checked() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        assert!(verify_key(&nl, &keyed, &[true]).is_err());
    }
}
