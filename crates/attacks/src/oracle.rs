//! Attack oracles: the working chip the adversary owns.
//!
//! Every oracle here is a thin adapter over the layered
//! [`OracleStack`](crate::stack::OracleStack) — base evaluation layer
//! (deterministic or noisy, always bit-parallel), optional key-rotation
//! layer — so block queries answer 64 patterns per pass while query
//! accounting stays per-pattern. The adapters exist to keep the
//! historical construction APIs; new code (and the campaign engine's job
//! materialization) composes the stack directly, which is how the
//! *combined* rotating + stochastic defense is built.

use crate::stack::OracleStack;
use gshe_camo::KeyedNetlist;
use gshe_logic::{ErrorProfile, Netlist, NodeId, PatternBlock};

/// A black-box working chip: apply inputs, observe outputs.
pub trait Oracle {
    /// Queries the chip once.
    fn query(&mut self, inputs: &[bool]) -> Vec<bool>;
    /// Number of primary inputs.
    fn num_inputs(&self) -> usize;
    /// Number of primary outputs.
    fn num_outputs(&self) -> usize;
    /// Queries issued so far.
    fn queries(&self) -> u64;

    /// Queries the chip on a whole [`PatternBlock`] (up to 64 patterns) in
    /// one call, returning one `u64` per primary output with bit `k` set to
    /// the output's value under pattern `k`.
    ///
    /// The default implementation loops over [`Oracle::query`], so every
    /// pattern still counts as one query. Block-capable oracles (e.g.
    /// any [`OracleStack`] composition over the bit-parallel engine)
    /// override this to answer all 64 patterns per pass while keeping the
    /// same query accounting.
    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        let mut lanes = vec![0u64; self.num_outputs()];
        for k in 0..block.count {
            let y = self.query(&block.pattern(k));
            debug_assert_eq!(y.len(), lanes.len(), "oracle output arity drifted");
            for (lane, &bit) in lanes.iter_mut().zip(&y) {
                if bit {
                    *lane |= 1 << k;
                }
            }
        }
        lanes
    }
}

/// Implements [`Oracle`] by delegating every method to the adapter's
/// inner [`OracleStack`].
macro_rules! delegate_oracle_to_stack {
    ($adapter:ty) => {
        impl Oracle for $adapter {
            fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
                self.stack.query(inputs)
            }

            fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
                self.stack.query_block(block)
            }

            fn num_inputs(&self) -> usize {
                self.stack.num_inputs()
            }

            fn num_outputs(&self) -> usize {
                self.stack.num_outputs()
            }

            fn queries(&self) -> u64 {
                self.stack.queries()
            }
        }
    };
}

/// A perfect oracle backed by the original (unprotected) netlist: the
/// bare exact base of the stack. Scratch buffers are hoisted into the
/// stack, so repeated block queries reuse one allocation.
#[derive(Debug, Clone)]
pub struct NetlistOracle<'a> {
    stack: OracleStack<'a>,
}

impl<'a> NetlistOracle<'a> {
    /// Wraps the original design.
    pub fn new(netlist: &'a Netlist) -> Self {
        NetlistOracle {
            stack: OracleStack::exact(netlist),
        }
    }
}

delegate_oracle_to_stack!(NetlistOracle<'_>);

/// The stochastic GSHE chip of Sec. V-B: every cloaked cell computes its
/// *correct* function but its output flips per evaluation according to an
/// [`ErrorProfile`] (thermally induced stochastic switching, tunable per
/// switch via I_S and the clock period). Errors at internal cells propagate
/// and superpose, producing *stochastically correlated* behaviour at the
/// primary outputs — precisely what breaks the consistency assumption of
/// SAT-style attacks.
///
/// The noisy base of the stack, without a rotation layer: per-node rates
/// live in a dense table, scalar queries keep the historical
/// one-`gen_bool`-per-noisy-node stream (seeded runs reproduce across the
/// refactor), and [`Oracle::query_block`] answers 64 patterns per engine
/// pass with Bernoulli flip masks.
#[derive(Debug, Clone)]
pub struct StochasticOracle<'a> {
    stack: OracleStack<'a>,
    /// Uniform per-cell rate the oracle was built with ([`f64::NAN`] when
    /// constructed from a heterogeneous profile).
    error_rate: f64,
}

impl<'a> StochasticOracle<'a> {
    /// Creates a stochastic chip over the *defender's* keyed netlist
    /// (correct functions installed) with uniform per-cell `error_rate`
    /// at every cloaked cell.
    ///
    /// # Panics
    ///
    /// Panics if `error_rate` is outside `[0, 1]`.
    pub fn new(keyed: &'a KeyedNetlist, error_rate: f64, seed: u64) -> Self {
        let nodes: Vec<NodeId> = keyed.camo_gates().iter().map(|g| g.node).collect();
        let profile = ErrorProfile::uniform_at(keyed.netlist().len(), &nodes, error_rate);
        let mut oracle = Self::with_profile(keyed, profile, seed);
        oracle.error_rate = error_rate;
        oracle
    }

    /// Creates a stochastic chip with an arbitrary per-node
    /// [`ErrorProfile`] — the "error rate for any switch can be tuned
    /// individually" knob. Nodes outside the cloaked set may be noisy too
    /// (e.g. device-derived profiles over a full GSHE fabric).
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover the keyed netlist's nodes.
    pub fn with_profile(keyed: &'a KeyedNetlist, profile: ErrorProfile, seed: u64) -> Self {
        StochasticOracle {
            stack: OracleStack::noisy(keyed, profile, seed),
            error_rate: f64::NAN,
        }
    }

    /// The uniform per-cell error rate, or the profile's maximum rate when
    /// the oracle was built from a heterogeneous profile.
    pub fn error_rate(&self) -> f64 {
        if self.error_rate.is_nan() {
            self.profile().max_rate()
        } else {
            self.error_rate
        }
    }

    /// The installed per-node error profile (dense).
    pub fn profile(&self) -> &ErrorProfile {
        self.stack.profile().expect("noisy base carries a profile")
    }
}

delegate_oracle_to_stack!(StochasticOracle<'_>);

/// An oracle whose key rotates every `period` queries (dynamic functional
/// obfuscation after Koteshwara et al. \[40\] — the Sec. V-C
/// "dynamic camouflaging" defense). The first epoch uses the correct key;
/// later epochs draw random keys, so answers from different epochs are
/// mutually inconsistent — starving SAT attacks of a consistent solution
/// space. Campaigns sweep the rotation `period` as a defense-side grid
/// dimension (`rotation_periods` in `gshe-campaign`).
///
/// The rotation layer of the stack over the exact base; stack a noisy base
/// underneath via [`OracleStack::rotating_noisy`] for the combined
/// rotating + stochastic defense.
#[derive(Debug, Clone)]
pub struct RotatingOracle<'a> {
    stack: OracleStack<'a>,
}

impl<'a> RotatingOracle<'a> {
    /// Creates a rotating oracle.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(keyed: &'a KeyedNetlist, period: u64, seed: u64) -> Self {
        RotatingOracle {
            stack: OracleStack::rotating(keyed, period, seed),
        }
    }

    /// The configured rotation period (queries per epoch).
    pub fn period(&self) -> u64 {
        self.stack
            .rotation_period()
            .expect("rotating stack carries a period")
    }
}

delegate_oracle_to_stack!(RotatingOracle<'_>);

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c17_keyed() -> (Netlist, KeyedNetlist) {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        (nl, keyed)
    }

    #[test]
    fn netlist_oracle_counts_queries() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let mut o = NetlistOracle::new(&nl);
        assert_eq!(o.queries(), 0);
        let y = o.query(&[false; 5]);
        assert_eq!(y.len(), 2);
        assert_eq!(o.queries(), 1);
        assert_eq!(o.num_inputs(), 5);
        assert_eq!(o.num_outputs(), 2);
    }

    #[test]
    fn zero_error_stochastic_oracle_matches_original() {
        let (nl, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.0, 5);
        for p in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            assert_eq!(o.query(&v), nl.evaluate(&v), "p={p}");
        }
    }

    #[test]
    fn high_error_oracle_disagrees_often() {
        let (nl, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.5, 5);
        let mut mismatches = 0;
        for rep in 0..20 {
            for p in 0..32u32 {
                let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
                if o.query(&v) != nl.evaluate(&v) {
                    mismatches += 1;
                }
                let _ = rep;
            }
        }
        assert!(
            mismatches > 100,
            "only {mismatches} mismatches at 50% error"
        );
    }

    #[test]
    fn small_error_rate_is_mostly_correct() {
        let (nl, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.02, 6);
        let mut mismatches = 0usize;
        let trials = 640usize;
        for rep in 0..(trials / 32) {
            for p in 0..32u32 {
                let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
                if o.query(&v) != nl.evaluate(&v) {
                    mismatches += 1;
                }
                let _ = rep;
            }
        }
        let rate = mismatches as f64 / trials as f64;
        // 6 cells × 2% ≈ 11% worst-case output error; must be well below 30%.
        assert!(rate < 0.3, "output error rate {rate}");
        assert!(
            mismatches > 0,
            "2% per-cell error should show up in 640 queries"
        );
    }

    #[test]
    fn oracle_is_reproducible_per_seed() {
        let (_, keyed) = c17_keyed();
        let inputs = [true, false, true, true, false];
        let mut a = StochasticOracle::new(&keyed, 0.3, 42);
        let mut b = StochasticOracle::new(&keyed, 0.3, 42);
        for _ in 0..10 {
            assert_eq!(a.query(&inputs), b.query(&inputs));
        }
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn error_rate_is_validated() {
        let (_, keyed) = c17_keyed();
        let _ = StochasticOracle::new(&keyed, 1.5, 0);
    }

    #[test]
    fn block_query_matches_scalar_queries_and_counts() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let patterns: Vec<Vec<bool>> = (0..20u32)
            .map(|p| (0..5).map(|k| (p >> k) & 1 == 1).collect())
            .collect();
        let block = PatternBlock::from_patterns(&patterns);

        // Bit-parallel override.
        let mut fast = NetlistOracle::new(&nl);
        let lanes = fast.query_block(&block);
        assert_eq!(fast.queries(), 20, "block path must count every pattern");

        // Scalar reference.
        let mut slow = NetlistOracle::new(&nl);
        for (k, p) in patterns.iter().enumerate() {
            let y = slow.query(p);
            for (o, &bit) in y.iter().enumerate() {
                assert_eq!(bit, (lanes[o] >> k) & 1 == 1, "pattern {k} output {o}");
            }
        }
        assert_eq!(slow.queries(), 20);
    }

    #[test]
    fn stochastic_block_query_counts_per_pattern() {
        // StochasticOracle's engine-backed query_block must count one
        // query per pattern, and with zero error it must agree bit-for-bit
        // with the deterministic bit-parallel path.
        let (_, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.0, 1);
        let block = PatternBlock::from_patterns(&[vec![false; 5], vec![true; 5]]);
        let lanes = o.query_block(&block);
        assert_eq!(o.queries(), 2);
        assert_eq!(lanes.len(), o.num_outputs());

        let mut fast = NetlistOracle::new(keyed.netlist());
        assert_eq!(fast.query_block(&block), lanes);
    }

    #[test]
    fn noisy_block_queries_flip_outputs() {
        // At 50% per-cell error over six cloaked cells, a full block must
        // disagree with the clean chip on many lanes.
        let (nl, keyed) = c17_keyed();
        let mut noisy = StochasticOracle::new(&keyed, 0.5, 9);
        let mut clean = NetlistOracle::new(&nl);
        let mut rng = StdRng::seed_from_u64(2);
        let mut flipped = 0u32;
        for _ in 0..8 {
            let block = PatternBlock::random(5, &mut rng);
            let a = noisy.query_block(&block);
            let b = clean.query_block(&block);
            flipped += a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x ^ y).count_ones())
                .sum::<u32>();
        }
        assert!(flipped > 100, "only {flipped} lane flips at 50% error");
    }

    #[test]
    fn scalar_path_uses_a_dense_rate_table() {
        // Satellite regression: the scalar path must not probe a per-node
        // hash set. The oracle exposes its engine profile — a dense
        // per-node rate vector covering *every* node, with the cloaked
        // cells (and only those) noisy.
        let (_, keyed) = c17_keyed();
        let o = StochasticOracle::new(&keyed, 0.25, 3);
        let profile = o.profile();
        assert_eq!(profile.len(), keyed.netlist().len(), "table must be dense");
        let mut expected: Vec<_> = keyed.camo_gates().iter().map(|g| g.node).collect();
        expected.sort_unstable();
        assert_eq!(profile.noisy_nodes().collect::<Vec<_>>(), expected);
        for node in profile.noisy_nodes() {
            assert_eq!(profile.rate(node), 0.25);
        }
    }

    #[test]
    fn rotating_block_edge_periods_match_scalar_bit_for_bit() {
        // Edge cases of the epoch-splitting block path: period 1 (rotate
        // before every query after the first), period 7 (does not divide
        // 64, so the boundary drifts through consecutive blocks), and
        // period 20 (one full block straddles the three epoch boundaries
        // at counts 20, 40, and 60). Each must match 64 scalar queries
        // bit-for-bit.
        let (_, keyed) = c17_keyed();
        for period in [1u64, 7, 20] {
            let mut fast = RotatingOracle::new(&keyed, period, 5);
            let mut slow = RotatingOracle::new(&keyed, period, 5);
            let mut rng = StdRng::seed_from_u64(4);
            for round in 0..2 {
                let block = PatternBlock::random(5, &mut rng);
                assert_eq!(block.count, 64);
                let lanes = fast.query_block(&block);
                for k in 0..block.count {
                    let y = slow.query(&block.pattern(k));
                    for (o, &bit) in y.iter().enumerate() {
                        assert_eq!(
                            bit,
                            (lanes[o] >> k) & 1 == 1,
                            "period {period} round {round} pattern {k} output {o}"
                        );
                    }
                }
                assert_eq!(fast.queries(), slow.queries(), "period {period}");
            }
        }
    }

    #[test]
    fn rotating_block_path_leaves_count_and_key_stream_in_sync() {
        // After a block query, the oracle must sit in *exactly* the state
        // the scalar loop would leave: same query count, same RNG position
        // in the key stream. Follow-up scalar queries spanning several
        // more rotations must therefore agree between the twins.
        let (_, keyed) = c17_keyed();
        for period in [1u64, 7, 20] {
            let mut fast = RotatingOracle::new(&keyed, period, 9);
            let mut slow = RotatingOracle::new(&keyed, period, 9);
            let mut rng = StdRng::seed_from_u64(6);
            let block = PatternBlock::random_n(5, 50, &mut rng);
            let _ = fast.query_block(&block);
            for k in 0..block.count {
                let _ = slow.query(&block.pattern(k));
            }
            assert_eq!(fast.queries(), slow.queries(), "period {period}");
            for q in 0..(3 * period + 2) {
                let p = block.pattern(q as usize % block.count);
                assert_eq!(
                    fast.query(&p),
                    slow.query(&p),
                    "period {period} post-block query {q} diverged"
                );
            }
        }
    }

    #[test]
    fn heterogeneous_profile_targets_single_cell() {
        // Per-switch tunability: only one cloaked cell noisy, at
        // certainty. Scalar queries must flip deterministically whenever
        // that cell's value matters.
        let (nl, keyed) = c17_keyed();
        let target = keyed.camo_gates()[0].node;
        let profile = ErrorProfile::uniform_at(keyed.netlist().len(), &[target], 1.0);
        let mut o = StochasticOracle::with_profile(&keyed, profile, 4);
        assert!(o.error_rate() == 1.0, "max rate of the profile");
        let mut disagreements = 0;
        for p in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            if o.query(&v) != nl.evaluate(&v) {
                disagreements += 1;
            }
        }
        assert!(disagreements > 0, "a certain flip must reach an output");
    }
}
