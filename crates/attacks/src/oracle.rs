//! Attack oracles: the working chip the adversary owns.
//!
//! Every oracle here is a thin adapter over the bit-parallel evaluation
//! engine in `gshe-logic` — [`Simulator`] for deterministic chips,
//! [`FaultSimulator`] for the stochastic GSHE chip — so block queries
//! answer 64 patterns per pass while query accounting stays per-pattern.

use gshe_camo::KeyedNetlist;
use gshe_logic::{ErrorProfile, FaultSimulator, Netlist, NodeId, PatternBlock, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A black-box working chip: apply inputs, observe outputs.
pub trait Oracle {
    /// Queries the chip once.
    fn query(&mut self, inputs: &[bool]) -> Vec<bool>;
    /// Number of primary inputs.
    fn num_inputs(&self) -> usize;
    /// Number of primary outputs.
    fn num_outputs(&self) -> usize;
    /// Queries issued so far.
    fn queries(&self) -> u64;

    /// Queries the chip on a whole [`PatternBlock`] (up to 64 patterns) in
    /// one call, returning one `u64` per primary output with bit `k` set to
    /// the output's value under pattern `k`.
    ///
    /// The default implementation loops over [`Oracle::query`], so every
    /// pattern still counts as one query. Block-capable oracles (e.g.
    /// [`NetlistOracle`] over the bit-parallel [`Simulator`]) override this
    /// to answer all 64 patterns per pass while keeping the same query
    /// accounting.
    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        let mut lanes = vec![0u64; self.num_outputs()];
        for k in 0..block.count {
            let y = self.query(&block.pattern(k));
            debug_assert_eq!(y.len(), lanes.len(), "oracle output arity drifted");
            for (lane, &bit) in lanes.iter_mut().zip(&y) {
                if bit {
                    *lane |= 1 << k;
                }
            }
        }
        lanes
    }
}

/// A perfect oracle backed by the original (unprotected) netlist.
///
/// The bit-parallel [`Simulator`] (and its scratch buffers) is hoisted
/// into the oracle, so repeated block queries reuse one allocation.
#[derive(Debug, Clone)]
pub struct NetlistOracle<'a> {
    sim: Simulator<'a>,
    count: u64,
}

impl<'a> NetlistOracle<'a> {
    /// Wraps the original design.
    pub fn new(netlist: &'a Netlist) -> Self {
        NetlistOracle {
            sim: Simulator::new(netlist),
            count: 0,
        }
    }
}

impl Oracle for NetlistOracle<'_> {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.count += 1;
        self.sim
            .run_scalar(inputs)
            .expect("oracle input arity mismatch")
    }

    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        self.count += block.count as u64;
        self.sim
            .run_masked(block)
            .expect("oracle input arity mismatch")
    }

    fn num_inputs(&self) -> usize {
        self.sim.netlist().inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.sim.netlist().outputs().len()
    }

    fn queries(&self) -> u64 {
        self.count
    }
}

/// The stochastic GSHE chip of Sec. V-B: every cloaked cell computes its
/// *correct* function but its output flips per evaluation according to an
/// [`ErrorProfile`] (thermally induced stochastic switching, tunable per
/// switch via I_S and the clock period). Errors at internal cells propagate
/// and superpose, producing *stochastically correlated* behaviour at the
/// primary outputs — precisely what breaks the consistency assumption of
/// SAT-style attacks.
///
/// A thin adapter over [`FaultSimulator`]: the per-node rates live in a
/// dense table (no per-node set probe on the hot path), scalar queries
/// keep the historical one-`gen_bool`-per-noisy-node stream (seeded runs
/// reproduce across the refactor), and [`Oracle::query_block`] answers 64
/// patterns per engine pass with Bernoulli flip masks.
#[derive(Debug, Clone)]
pub struct StochasticOracle<'a> {
    keyed: &'a KeyedNetlist,
    engine: FaultSimulator<'a>,
    /// Uniform per-cell rate the oracle was built with ([`f64::NAN`] when
    /// constructed from a heterogeneous profile).
    error_rate: f64,
    count: u64,
}

impl<'a> StochasticOracle<'a> {
    /// Creates a stochastic chip over the *defender's* keyed netlist
    /// (correct functions installed) with uniform per-cell `error_rate`
    /// at every cloaked cell.
    ///
    /// # Panics
    ///
    /// Panics if `error_rate` is outside `[0, 1]`.
    pub fn new(keyed: &'a KeyedNetlist, error_rate: f64, seed: u64) -> Self {
        let nodes: Vec<NodeId> = keyed.camo_gates().iter().map(|g| g.node).collect();
        let profile = ErrorProfile::uniform_at(keyed.netlist().len(), &nodes, error_rate);
        let mut oracle = Self::with_profile(keyed, profile, seed);
        oracle.error_rate = error_rate;
        oracle
    }

    /// Creates a stochastic chip with an arbitrary per-node
    /// [`ErrorProfile`] — the "error rate for any switch can be tuned
    /// individually" knob. Nodes outside the cloaked set may be noisy too
    /// (e.g. device-derived profiles over a full GSHE fabric).
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover the keyed netlist's nodes.
    pub fn with_profile(keyed: &'a KeyedNetlist, profile: ErrorProfile, seed: u64) -> Self {
        StochasticOracle {
            engine: FaultSimulator::new(keyed.netlist(), profile, seed ^ 0x570C_4A57),
            keyed,
            error_rate: f64::NAN,
            count: 0,
        }
    }

    /// The uniform per-cell error rate, or the profile's maximum rate when
    /// the oracle was built from a heterogeneous profile.
    pub fn error_rate(&self) -> f64 {
        if self.error_rate.is_nan() {
            self.engine.profile().max_rate()
        } else {
            self.error_rate
        }
    }

    /// The installed per-node error profile (dense).
    pub fn profile(&self) -> &ErrorProfile {
        self.engine.profile()
    }
}

impl Oracle for StochasticOracle<'_> {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.count += 1;
        self.engine
            .run_scalar(inputs)
            .expect("oracle input arity mismatch")
    }

    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        self.count += block.count as u64;
        self.engine
            .run_masked(block)
            .expect("oracle input arity mismatch")
    }

    fn num_inputs(&self) -> usize {
        self.keyed.netlist().inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.keyed.netlist().outputs().len()
    }

    fn queries(&self) -> u64 {
        self.count
    }
}

/// An oracle whose key rotates every `period` queries (dynamic functional
/// obfuscation after Koteshwara et al. \[40\] — the Sec. V-C
/// "dynamic camouflaging" defense). The first epoch uses the correct key;
/// later epochs draw random keys, so answers from different epochs are
/// mutually inconsistent — starving SAT attacks of a consistent solution
/// space. Campaigns sweep the rotation `period` as a defense-side grid
/// dimension (`rotation_periods` in `gshe-campaign`).
#[derive(Debug, Clone)]
pub struct RotatingOracle<'a> {
    keyed: &'a KeyedNetlist,
    resolved: Netlist,
    period: u64,
    count: u64,
    rng: StdRng,
    /// Bit-parallel scratch reused across block queries (the resolved
    /// netlist changes identity per epoch, but never size).
    scratch: Vec<u64>,
}

impl<'a> RotatingOracle<'a> {
    /// Creates a rotating oracle.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(keyed: &'a KeyedNetlist, period: u64, seed: u64) -> Self {
        assert!(period > 0, "rotation period must be positive");
        RotatingOracle {
            resolved: keyed
                .resolve(&keyed.correct_key())
                .expect("correct key resolves"),
            keyed,
            period,
            count: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xD07A7E),
            scratch: Vec::new(),
        }
    }

    /// The configured rotation period (queries per epoch).
    pub fn period(&self) -> u64 {
        self.period
    }

    fn rotate(&mut self) {
        let key: Vec<bool> = (0..self.keyed.key_len())
            .map(|_| self.rng.gen_bool(0.5))
            .collect();
        self.resolved = self.keyed.resolve(&key).expect("key width is correct");
    }
}

impl Oracle for RotatingOracle<'_> {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        if self.count > 0 && self.count.is_multiple_of(self.period) {
            self.rotate();
        }
        self.count += 1;
        gshe_logic::sim::run_scalar_with_scratch(&self.resolved, &mut self.scratch, inputs)
            .expect("oracle input arity mismatch")
    }

    /// Bit-parallel block path with *per-pattern* rotation semantics: the
    /// block is split at epoch boundaries, each segment answered by one
    /// pass of the bit-parallel engine over the epoch's resolved netlist.
    /// Key draws, query accounting, and answers match the scalar loop
    /// exactly; only the evaluation is batched.
    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        let mut lanes = vec![0u64; self.num_outputs()];
        let mut k = 0usize;
        while k < block.count {
            if self.count > 0 && self.count.is_multiple_of(self.period) {
                self.rotate();
            }
            let until_rotation = (self.period - self.count % self.period).min(64) as usize;
            let take = until_rotation.min(block.count - k);
            let segment = if take == 64 {
                !0u64
            } else {
                ((1u64 << take) - 1) << k
            };
            let outs = gshe_logic::sim::run_with_scratch(&self.resolved, &mut self.scratch, block)
                .expect("oracle input arity mismatch");
            for (lane, out) in lanes.iter_mut().zip(&outs) {
                *lane |= out & segment;
            }
            self.count += take as u64;
            k += take;
        }
        lanes
    }

    fn num_inputs(&self) -> usize {
        self.keyed.netlist().inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.keyed.netlist().outputs().len()
    }

    fn queries(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};

    fn c17_keyed() -> (Netlist, KeyedNetlist) {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        (nl, keyed)
    }

    #[test]
    fn netlist_oracle_counts_queries() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let mut o = NetlistOracle::new(&nl);
        assert_eq!(o.queries(), 0);
        let y = o.query(&[false; 5]);
        assert_eq!(y.len(), 2);
        assert_eq!(o.queries(), 1);
        assert_eq!(o.num_inputs(), 5);
        assert_eq!(o.num_outputs(), 2);
    }

    #[test]
    fn zero_error_stochastic_oracle_matches_original() {
        let (nl, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.0, 5);
        for p in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            assert_eq!(o.query(&v), nl.evaluate(&v), "p={p}");
        }
    }

    #[test]
    fn high_error_oracle_disagrees_often() {
        let (nl, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.5, 5);
        let mut mismatches = 0;
        for rep in 0..20 {
            for p in 0..32u32 {
                let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
                if o.query(&v) != nl.evaluate(&v) {
                    mismatches += 1;
                }
                let _ = rep;
            }
        }
        assert!(
            mismatches > 100,
            "only {mismatches} mismatches at 50% error"
        );
    }

    #[test]
    fn small_error_rate_is_mostly_correct() {
        let (nl, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.02, 6);
        let mut mismatches = 0usize;
        let trials = 640usize;
        for rep in 0..(trials / 32) {
            for p in 0..32u32 {
                let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
                if o.query(&v) != nl.evaluate(&v) {
                    mismatches += 1;
                }
                let _ = rep;
            }
        }
        let rate = mismatches as f64 / trials as f64;
        // 6 cells × 2% ≈ 11% worst-case output error; must be well below 30%.
        assert!(rate < 0.3, "output error rate {rate}");
        assert!(
            mismatches > 0,
            "2% per-cell error should show up in 640 queries"
        );
    }

    #[test]
    fn oracle_is_reproducible_per_seed() {
        let (_, keyed) = c17_keyed();
        let inputs = [true, false, true, true, false];
        let mut a = StochasticOracle::new(&keyed, 0.3, 42);
        let mut b = StochasticOracle::new(&keyed, 0.3, 42);
        for _ in 0..10 {
            assert_eq!(a.query(&inputs), b.query(&inputs));
        }
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn error_rate_is_validated() {
        let (_, keyed) = c17_keyed();
        let _ = StochasticOracle::new(&keyed, 1.5, 0);
    }

    #[test]
    fn block_query_matches_scalar_queries_and_counts() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let patterns: Vec<Vec<bool>> = (0..20u32)
            .map(|p| (0..5).map(|k| (p >> k) & 1 == 1).collect())
            .collect();
        let block = PatternBlock::from_patterns(&patterns);

        // Bit-parallel override.
        let mut fast = NetlistOracle::new(&nl);
        let lanes = fast.query_block(&block);
        assert_eq!(fast.queries(), 20, "block path must count every pattern");

        // Scalar reference.
        let mut slow = NetlistOracle::new(&nl);
        for (k, p) in patterns.iter().enumerate() {
            let y = slow.query(p);
            for (o, &bit) in y.iter().enumerate() {
                assert_eq!(bit, (lanes[o] >> k) & 1 == 1, "pattern {k} output {o}");
            }
        }
        assert_eq!(slow.queries(), 20);
    }

    #[test]
    fn stochastic_block_query_counts_per_pattern() {
        // StochasticOracle's engine-backed query_block must count one
        // query per pattern, and with zero error it must agree bit-for-bit
        // with the deterministic bit-parallel path.
        let (_, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.0, 1);
        let block = PatternBlock::from_patterns(&[vec![false; 5], vec![true; 5]]);
        let lanes = o.query_block(&block);
        assert_eq!(o.queries(), 2);
        assert_eq!(lanes.len(), o.num_outputs());

        let mut fast = NetlistOracle::new(keyed.netlist());
        assert_eq!(fast.query_block(&block), lanes);
    }

    #[test]
    fn noisy_block_queries_flip_outputs() {
        // At 50% per-cell error over six cloaked cells, a full block must
        // disagree with the clean chip on many lanes.
        let (nl, keyed) = c17_keyed();
        let mut noisy = StochasticOracle::new(&keyed, 0.5, 9);
        let mut clean = NetlistOracle::new(&nl);
        let mut rng = StdRng::seed_from_u64(2);
        let mut flipped = 0u32;
        for _ in 0..8 {
            let block = PatternBlock::random(5, &mut rng);
            let a = noisy.query_block(&block);
            let b = clean.query_block(&block);
            flipped += a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x ^ y).count_ones())
                .sum::<u32>();
        }
        assert!(flipped > 100, "only {flipped} lane flips at 50% error");
    }

    #[test]
    fn scalar_path_uses_a_dense_rate_table() {
        // Satellite regression: the scalar path must not probe a per-node
        // hash set. The oracle exposes its engine profile — a dense
        // per-node rate vector covering *every* node, with the cloaked
        // cells (and only those) noisy.
        let (_, keyed) = c17_keyed();
        let o = StochasticOracle::new(&keyed, 0.25, 3);
        let profile = o.profile();
        assert_eq!(profile.len(), keyed.netlist().len(), "table must be dense");
        let mut expected: Vec<_> = keyed.camo_gates().iter().map(|g| g.node).collect();
        expected.sort_unstable();
        assert_eq!(profile.noisy_nodes().collect::<Vec<_>>(), expected);
        for node in profile.noisy_nodes() {
            assert_eq!(profile.rate(node), 0.25);
        }
    }

    #[test]
    fn rotating_block_edge_periods_match_scalar_bit_for_bit() {
        // Edge cases of the epoch-splitting block path: period 1 (rotate
        // before every query after the first), period 7 (does not divide
        // 64, so the boundary drifts through consecutive blocks), and
        // period 20 (one full block straddles the three epoch boundaries
        // at counts 20, 40, and 60). Each must match 64 scalar queries
        // bit-for-bit.
        let (_, keyed) = c17_keyed();
        for period in [1u64, 7, 20] {
            let mut fast = RotatingOracle::new(&keyed, period, 5);
            let mut slow = RotatingOracle::new(&keyed, period, 5);
            let mut rng = StdRng::seed_from_u64(4);
            for round in 0..2 {
                let block = PatternBlock::random(5, &mut rng);
                assert_eq!(block.count, 64);
                let lanes = fast.query_block(&block);
                for k in 0..block.count {
                    let y = slow.query(&block.pattern(k));
                    for (o, &bit) in y.iter().enumerate() {
                        assert_eq!(
                            bit,
                            (lanes[o] >> k) & 1 == 1,
                            "period {period} round {round} pattern {k} output {o}"
                        );
                    }
                }
                assert_eq!(fast.queries(), slow.queries(), "period {period}");
            }
        }
    }

    #[test]
    fn rotating_block_path_leaves_count_and_key_stream_in_sync() {
        // After a block query, the oracle must sit in *exactly* the state
        // the scalar loop would leave: same query count, same RNG position
        // in the key stream. Follow-up scalar queries spanning several
        // more rotations must therefore agree between the twins.
        let (_, keyed) = c17_keyed();
        for period in [1u64, 7, 20] {
            let mut fast = RotatingOracle::new(&keyed, period, 9);
            let mut slow = RotatingOracle::new(&keyed, period, 9);
            let mut rng = StdRng::seed_from_u64(6);
            let block = PatternBlock::random_n(5, 50, &mut rng);
            let _ = fast.query_block(&block);
            for k in 0..block.count {
                let _ = slow.query(&block.pattern(k));
            }
            assert_eq!(fast.queries(), slow.queries(), "period {period}");
            for q in 0..(3 * period + 2) {
                let p = block.pattern(q as usize % block.count);
                assert_eq!(
                    fast.query(&p),
                    slow.query(&p),
                    "period {period} post-block query {q} diverged"
                );
            }
        }
    }

    #[test]
    fn heterogeneous_profile_targets_single_cell() {
        // Per-switch tunability: only one cloaked cell noisy, at
        // certainty. Scalar queries must flip deterministically whenever
        // that cell's value matters.
        let (nl, keyed) = c17_keyed();
        let target = keyed.camo_gates()[0].node;
        let profile = ErrorProfile::uniform_at(keyed.netlist().len(), &[target], 1.0);
        let mut o = StochasticOracle::with_profile(&keyed, profile, 4);
        assert!(o.error_rate() == 1.0, "max rate of the profile");
        let mut disagreements = 0;
        for p in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            if o.query(&v) != nl.evaluate(&v) {
                disagreements += 1;
            }
        }
        assert!(disagreements > 0, "a certain flip must reach an output");
    }
}
