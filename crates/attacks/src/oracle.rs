//! Attack oracles: the working chip the adversary owns.

use gshe_camo::KeyedNetlist;
use gshe_logic::{Netlist, NodeId, NodeKind, PatternBlock, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A black-box working chip: apply inputs, observe outputs.
pub trait Oracle {
    /// Queries the chip once.
    fn query(&mut self, inputs: &[bool]) -> Vec<bool>;
    /// Number of primary inputs.
    fn num_inputs(&self) -> usize;
    /// Number of primary outputs.
    fn num_outputs(&self) -> usize;
    /// Queries issued so far.
    fn queries(&self) -> u64;

    /// Queries the chip on a whole [`PatternBlock`] (up to 64 patterns) in
    /// one call, returning one `u64` per primary output with bit `k` set to
    /// the output's value under pattern `k`.
    ///
    /// The default implementation loops over [`Oracle::query`], so every
    /// pattern still counts as one query. Block-capable oracles (e.g.
    /// [`NetlistOracle`] over the bit-parallel [`Simulator`]) override this
    /// to answer all 64 patterns per pass while keeping the same query
    /// accounting.
    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        let mut lanes = vec![0u64; self.num_outputs()];
        for k in 0..block.count {
            let y = self.query(&block.pattern(k));
            debug_assert_eq!(y.len(), lanes.len(), "oracle output arity drifted");
            for (lane, &bit) in lanes.iter_mut().zip(&y) {
                if bit {
                    *lane |= 1 << k;
                }
            }
        }
        lanes
    }
}

/// A perfect oracle backed by the original (unprotected) netlist.
#[derive(Debug, Clone)]
pub struct NetlistOracle<'a> {
    netlist: &'a Netlist,
    count: u64,
}

impl<'a> NetlistOracle<'a> {
    /// Wraps the original design.
    pub fn new(netlist: &'a Netlist) -> Self {
        NetlistOracle { netlist, count: 0 }
    }
}

impl Oracle for NetlistOracle<'_> {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.count += 1;
        self.netlist.evaluate(inputs)
    }

    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        self.count += block.count as u64;
        Simulator::new(self.netlist)
            .run_masked(block)
            .expect("oracle input arity mismatch")
    }

    fn num_inputs(&self) -> usize {
        self.netlist.inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.netlist.outputs().len()
    }

    fn queries(&self) -> u64 {
        self.count
    }
}

/// The stochastic GSHE chip of Sec. V-B: every cloaked cell computes its
/// *correct* function but its output flips with probability `error_rate`
/// per evaluation (thermally induced stochastic switching, tunable per
/// switch via I_S and the clock period). Errors at internal cells propagate
/// and superpose, producing *stochastically correlated* behaviour at the
/// primary outputs — precisely what breaks the consistency assumption of
/// SAT-style attacks.
#[derive(Debug, Clone)]
pub struct StochasticOracle<'a> {
    keyed: &'a KeyedNetlist,
    /// Per-cell flip probability (1 − accuracy).
    error_rate: f64,
    noisy_nodes: HashSet<NodeId>,
    rng: StdRng,
    count: u64,
}

impl<'a> StochasticOracle<'a> {
    /// Creates a stochastic chip over the *defender's* keyed netlist
    /// (correct functions installed) with uniform per-cell `error_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `error_rate` is outside `[0, 1]`.
    pub fn new(keyed: &'a KeyedNetlist, error_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&error_rate),
            "error rate must be in [0, 1]"
        );
        StochasticOracle {
            noisy_nodes: keyed.camo_gates().iter().map(|g| g.node).collect(),
            keyed,
            error_rate,
            rng: StdRng::seed_from_u64(seed ^ 0x570C_4A57),
            count: 0,
        }
    }

    /// The configured per-cell error rate.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }
}

impl Oracle for StochasticOracle<'_> {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.count += 1;
        let nl = self.keyed.netlist();
        assert_eq!(
            inputs.len(),
            nl.inputs().len(),
            "oracle input arity mismatch"
        );
        let mut val = vec![false; nl.len()];
        let mut next_input = 0usize;
        for (i, node) in nl.nodes().iter().enumerate() {
            let mut v = match node.kind {
                NodeKind::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                NodeKind::Const(c) => c,
                NodeKind::Gate1 { f, a } => f.eval(val[a.index()]),
                NodeKind::Gate2 { f, a, b } => f.eval(val[a.index()], val[b.index()]),
            };
            if self.error_rate > 0.0
                && self.noisy_nodes.contains(&NodeId(i as u32))
                && self.rng.gen_bool(self.error_rate)
            {
                v = !v;
            }
            val[i] = v;
        }
        nl.outputs().iter().map(|o| val[o.index()]).collect()
    }

    fn num_inputs(&self) -> usize {
        self.keyed.netlist().inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.keyed.netlist().outputs().len()
    }

    fn queries(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};

    fn c17_keyed() -> (Netlist, KeyedNetlist) {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        (nl, keyed)
    }

    #[test]
    fn netlist_oracle_counts_queries() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let mut o = NetlistOracle::new(&nl);
        assert_eq!(o.queries(), 0);
        let y = o.query(&[false; 5]);
        assert_eq!(y.len(), 2);
        assert_eq!(o.queries(), 1);
        assert_eq!(o.num_inputs(), 5);
        assert_eq!(o.num_outputs(), 2);
    }

    #[test]
    fn zero_error_stochastic_oracle_matches_original() {
        let (nl, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.0, 5);
        for p in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            assert_eq!(o.query(&v), nl.evaluate(&v), "p={p}");
        }
    }

    #[test]
    fn high_error_oracle_disagrees_often() {
        let (nl, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.5, 5);
        let mut mismatches = 0;
        for rep in 0..20 {
            for p in 0..32u32 {
                let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
                if o.query(&v) != nl.evaluate(&v) {
                    mismatches += 1;
                }
                let _ = rep;
            }
        }
        assert!(
            mismatches > 100,
            "only {mismatches} mismatches at 50% error"
        );
    }

    #[test]
    fn small_error_rate_is_mostly_correct() {
        let (nl, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.02, 6);
        let mut mismatches = 0usize;
        let trials = 640usize;
        for rep in 0..(trials / 32) {
            for p in 0..32u32 {
                let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
                if o.query(&v) != nl.evaluate(&v) {
                    mismatches += 1;
                }
                let _ = rep;
            }
        }
        let rate = mismatches as f64 / trials as f64;
        // 6 cells × 2% ≈ 11% worst-case output error; must be well below 30%.
        assert!(rate < 0.3, "output error rate {rate}");
        assert!(
            mismatches > 0,
            "2% per-cell error should show up in 640 queries"
        );
    }

    #[test]
    fn oracle_is_reproducible_per_seed() {
        let (_, keyed) = c17_keyed();
        let inputs = [true, false, true, true, false];
        let mut a = StochasticOracle::new(&keyed, 0.3, 42);
        let mut b = StochasticOracle::new(&keyed, 0.3, 42);
        for _ in 0..10 {
            assert_eq!(a.query(&inputs), b.query(&inputs));
        }
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn error_rate_is_validated() {
        let (_, keyed) = c17_keyed();
        let _ = StochasticOracle::new(&keyed, 1.5, 0);
    }

    #[test]
    fn block_query_matches_scalar_queries_and_counts() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let patterns: Vec<Vec<bool>> = (0..20u32)
            .map(|p| (0..5).map(|k| (p >> k) & 1 == 1).collect())
            .collect();
        let block = PatternBlock::from_patterns(&patterns);

        // Bit-parallel override.
        let mut fast = NetlistOracle::new(&nl);
        let lanes = fast.query_block(&block);
        assert_eq!(fast.queries(), 20, "block path must count every pattern");

        // Scalar reference.
        let mut slow = NetlistOracle::new(&nl);
        for (k, p) in patterns.iter().enumerate() {
            let y = slow.query(p);
            for (o, &bit) in y.iter().enumerate() {
                assert_eq!(bit, (lanes[o] >> k) & 1 == 1, "pattern {k} output {o}");
            }
        }
        assert_eq!(slow.queries(), 20);
    }

    #[test]
    fn default_block_query_counts_per_pattern() {
        // StochasticOracle does not override query_block: the default
        // implementation must still count one query per pattern.
        let (_, keyed) = c17_keyed();
        let mut o = StochasticOracle::new(&keyed, 0.0, 1);
        let block = PatternBlock::from_patterns(&[vec![false; 5], vec![true; 5]]);
        let lanes = o.query_block(&block);
        assert_eq!(o.queries(), 2);
        assert_eq!(lanes.len(), o.num_outputs());

        // With zero error the default path agrees with the fast path over
        // the defender's netlist.
        let mut fast = NetlistOracle::new(keyed.netlist());
        assert_eq!(fast.query_block(&block), lanes);
    }
}
