//! # gshe-attacks
//!
//! Analytical attacks against camouflaged/locked netlists, reproducing the
//! paper's Sec. V evaluation apparatus:
//!
//! * the oracle-guided **SAT attack** of Subramanyan et al. (\[8\], \[37\]) —
//!   miter-based DIP refinement ([`sat_attack`]);
//! * **Double DIP** (Shen & Zhou \[12\]) — each iteration rules out at least
//!   two incorrect keys ([`double_dip_attack`]);
//! * an **AppSAT**-style approximate attack (Shamsi et al. \[11\]) — SAT
//!   attack interleaved with random-query error estimation and early exit
//!   ([`appsat_attack`]);
//! * the shared [`dip_engine`] all three delegate to: one
//!   miter/constraint-accumulation loop parameterized by a
//!   [`RefinePolicy`], discovering up to [`AttackConfig::dip_batch`] DIPs
//!   per solver round and resolving each batch through **one**
//!   bit-parallel [`Oracle::query_block`] call;
//! * oracles as a layered [`stack`]: a bit-parallel base (exact or
//!   fault-injecting) with an optional key-rotation layer, composed via
//!   [`OracleStack`]. The legacy chips are thin adapters: a perfect
//!   working chip ([`NetlistOracle`]), the tunable **stochastic** GSHE
//!   chip of Sec. V-B ([`StochasticOracle`]) whose per-cell error rates
//!   superpose into correlated output errors, and the key-rotating chip
//!   of Sec. V-C ([`RotatingOracle`]); [`OracleStack::rotating_noisy`]
//!   is the combined rotating + stochastic defense;
//! * key verification by exact SAT equivalence ([`verify_key`]).
//!
//! The attacker's view of a [`gshe_camo::KeyedNetlist`] is its structure
//! and per-cell candidate sets only; attacks never read the embedded
//! correct key (it is used solely by oracles and verification).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appsat;
pub mod coi;
pub mod dip_engine;
pub mod double_dip;
pub mod encode;
pub mod metrics;
pub mod oracle;
pub mod runner;
pub mod sat_attack;
pub mod stack;

pub use appsat::{appsat_attack, AppSatConfig};
pub use coi::{cone_inputs, CoiMode, CoiOracle, CoiProjection, COI_AUTO_THRESHOLD};
pub use dip_engine::{RefinePolicy, DEFAULT_BATCH_WIDTH};
pub use double_dip::double_dip_attack;
pub use encode::{assert_valid_key_codes, encode_keyed, encode_keyed_fixed, EncodedCopy};
pub use gshe_sat::{RestartMode, SimplifyMode};
pub use metrics::{sat_equivalent_on, verify_key, verify_key_scoped, KeyVerification};
pub use oracle::{NetlistOracle, Oracle, RotatingOracle, StochasticOracle};
pub use runner::{AttackKind, AttackRunner};
pub use sat_attack::{sat_attack, AttackConfig, AttackOutcome, AttackStatus};
pub use stack::{EvalLayer, OracleStack};
