//! SAT encoding of keyed netlists (the attacker's model).
//!
//! A cloaked cell with candidate set `{f₀ … f_{k−1}}` and key bits `K` is
//! encoded as: for every candidate `i` and every input row, the clause
//! `(K ≠ i) ∨ (inputs ≠ row) ∨ (z = fᵢ(row))`. Unused binary codes are
//! globally forbidden by [`assert_valid_key_codes`] so SAT models always
//! decode to real candidates.
//!
//! [`encode_keyed_fixed`] is the constant-folded variant used for the
//! oracle I/O constraints `C(X_d, K) = Y_d`: with the inputs fixed, all
//! key-independent logic folds away and each cloaked cell costs only one
//! short clause per candidate — the dominant factor in DIP-loop throughput.

use gshe_camo::{CamoGate, Candidates, KeyedNetlist};
use gshe_logic::NodeKind;
use gshe_sat::{CircuitEncoder, ClauseSink, Lit};
use std::collections::HashMap;

/// One encoded copy of the keyed circuit.
#[derive(Debug, Clone)]
pub struct EncodedCopy {
    /// Literals of the primary inputs (shared across copies when the caller
    /// passes them around).
    pub inputs: Vec<Lit>,
    /// Literals of the primary outputs.
    pub outputs: Vec<Lit>,
}

/// A signal during constant-folded encoding: known constant or symbolic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigVal {
    /// Compile-time constant.
    Known(bool),
    /// Symbolic literal.
    Sym(Lit),
}

fn selector_negation(gate: &CamoGate, code: usize, key: &[Lit]) -> Vec<Lit> {
    (0..gate.key_bits())
        .map(|j| {
            let bit = (code >> j) & 1 == 1;
            let k = key[gate.key_offset + j];
            if bit {
                !k
            } else {
                k
            }
        })
        .collect()
}

/// Forbids the unused binary codes of every cloaked cell (emit once per key
/// vector, not per circuit copy).
pub fn assert_valid_key_codes<S: ClauseSink>(
    enc: &mut CircuitEncoder<'_, S>,
    keyed: &KeyedNetlist,
    key: &[Lit],
) {
    for gate in keyed.camo_gates() {
        let n = gate.candidates.len();
        for code in n..(1usize << gate.key_bits()) {
            let clause = selector_negation(gate, code, key);
            enc.clause(&clause);
        }
    }
}

/// Encodes a full symbolic copy of the keyed circuit under key literals
/// `key`, allocating fresh input literals.
///
/// # Panics
///
/// Panics if `key.len() != keyed.key_len()`.
pub fn encode_keyed<S: ClauseSink>(
    enc: &mut CircuitEncoder<'_, S>,
    keyed: &KeyedNetlist,
    key: &[Lit],
) -> EncodedCopy {
    assert_eq!(key.len(), keyed.key_len(), "key literal width mismatch");
    let nl = keyed.netlist();
    let camo: HashMap<usize, &CamoGate> = keyed
        .camo_gates()
        .iter()
        .map(|g| (g.node.index(), g))
        .collect();
    let mut lits: Vec<Lit> = Vec::with_capacity(nl.len());
    let mut inputs = Vec::new();

    for (i, node) in nl.nodes().enumerate() {
        let z = if let Some(gate) = camo.get(&i) {
            encode_camo_cell(enc, gate, key, &lits, &node.kind)
        } else {
            match node.kind {
                NodeKind::Input => {
                    let l = enc.fresh();
                    inputs.push(l);
                    l
                }
                NodeKind::Const(c) => enc.constant(c),
                NodeKind::Gate1 { f, a } => match f {
                    gshe_logic::Bf1::Buf => lits[a.index()],
                    gshe_logic::Bf1::Inv => !lits[a.index()],
                    gshe_logic::Bf1::Const0 => enc.constant(false),
                    gshe_logic::Bf1::Const1 => enc.constant(true),
                },
                NodeKind::Gate2 { f, a, b } => {
                    enc.gate_tt(f.truth_table(), lits[a.index()], lits[b.index()])
                }
            }
        };
        lits.push(z);
    }

    let outputs = nl.outputs().iter().map(|o| lits[o.index()]).collect();
    EncodedCopy { inputs, outputs }
}

fn encode_camo_cell<S: ClauseSink>(
    enc: &mut CircuitEncoder<'_, S>,
    gate: &CamoGate,
    key: &[Lit],
    lits: &[Lit],
    kind: &NodeKind,
) -> Lit {
    let z = enc.fresh();
    match (&gate.candidates, kind) {
        (Candidates::TwoInput(fs), NodeKind::Gate2 { a, b, .. }) => {
            let (la, lb) = (lits[a.index()], lits[b.index()]);
            for (i, f) in fs.iter().enumerate() {
                let sel = selector_negation(gate, i, key);
                for row in 0..4u8 {
                    let va = row & 1 == 1;
                    let vb = row & 2 == 2;
                    let out = f.eval(va, vb);
                    let mut clause = sel.clone();
                    clause.push(if va { !la } else { la });
                    clause.push(if vb { !lb } else { lb });
                    clause.push(if out { z } else { !z });
                    enc.clause(&clause);
                }
            }
        }
        (Candidates::OneInput(fs), NodeKind::Gate1 { a, .. }) => {
            let la = lits[a.index()];
            for (i, f) in fs.iter().enumerate() {
                let sel = selector_negation(gate, i, key);
                for va in [false, true] {
                    let out = f.eval(va);
                    let mut clause = sel.clone();
                    clause.push(if va { !la } else { la });
                    clause.push(if out { z } else { !z });
                    enc.clause(&clause);
                }
            }
        }
        (c, k) => unreachable!("camo cell shape mismatch: {c:?} at {k:?}"),
    }
    z
}

/// Encodes the circuit with *fixed* primary inputs, constant-folding all
/// key-independent logic. Returns the output signals.
///
/// # Panics
///
/// Panics on key or input width mismatch.
pub fn encode_keyed_fixed<S: ClauseSink>(
    enc: &mut CircuitEncoder<'_, S>,
    keyed: &KeyedNetlist,
    key: &[Lit],
    inputs: &[bool],
) -> Vec<SigVal> {
    assert_eq!(key.len(), keyed.key_len(), "key literal width mismatch");
    let nl = keyed.netlist();
    assert_eq!(inputs.len(), nl.inputs().len(), "input width mismatch");
    let camo: HashMap<usize, &CamoGate> = keyed
        .camo_gates()
        .iter()
        .map(|g| (g.node.index(), g))
        .collect();
    let mut vals: Vec<SigVal> = Vec::with_capacity(nl.len());
    let mut next_input = 0usize;

    for (i, node) in nl.nodes().enumerate() {
        let v = if let Some(gate) = camo.get(&i) {
            SigVal::Sym(encode_camo_cell_fixed(enc, gate, key, &vals, &node.kind))
        } else {
            match node.kind {
                NodeKind::Input => {
                    let v = SigVal::Known(inputs[next_input]);
                    next_input += 1;
                    v
                }
                NodeKind::Const(c) => SigVal::Known(c),
                NodeKind::Gate1 { f, a } => match vals[a.index()] {
                    SigVal::Known(v) => SigVal::Known(f.eval(v)),
                    SigVal::Sym(l) => match f {
                        gshe_logic::Bf1::Buf => SigVal::Sym(l),
                        gshe_logic::Bf1::Inv => SigVal::Sym(!l),
                        gshe_logic::Bf1::Const0 => SigVal::Known(false),
                        gshe_logic::Bf1::Const1 => SigVal::Known(true),
                    },
                },
                NodeKind::Gate2 { f, a, b } => fold_gate2(enc, f, vals[a.index()], vals[b.index()]),
            }
        };
        vals.push(v);
    }
    nl.outputs().iter().map(|o| vals[o.index()]).collect()
}

fn fold_gate2<S: ClauseSink>(
    enc: &mut CircuitEncoder<'_, S>,
    f: gshe_logic::Bf2,
    a: SigVal,
    b: SigVal,
) -> SigVal {
    match (a, b) {
        (SigVal::Known(va), SigVal::Known(vb)) => SigVal::Known(f.eval(va, vb)),
        (SigVal::Known(va), SigVal::Sym(lb)) => {
            let f0 = f.eval(va, false);
            let f1 = f.eval(va, true);
            match (f0, f1) {
                (false, false) => SigVal::Known(false),
                (true, true) => SigVal::Known(true),
                (false, true) => SigVal::Sym(lb),
                (true, false) => SigVal::Sym(!lb),
            }
        }
        (SigVal::Sym(la), SigVal::Known(vb)) => {
            let f0 = f.eval(false, vb);
            let f1 = f.eval(true, vb);
            match (f0, f1) {
                (false, false) => SigVal::Known(false),
                (true, true) => SigVal::Known(true),
                (false, true) => SigVal::Sym(la),
                (true, false) => SigVal::Sym(!la),
            }
        }
        (SigVal::Sym(la), SigVal::Sym(lb)) => SigVal::Sym(enc.gate_tt(f.truth_table(), la, lb)),
    }
}

fn encode_camo_cell_fixed<S: ClauseSink>(
    enc: &mut CircuitEncoder<'_, S>,
    gate: &CamoGate,
    key: &[Lit],
    vals: &[SigVal],
    kind: &NodeKind,
) -> Lit {
    let z = enc.fresh();
    match (&gate.candidates, kind) {
        (Candidates::TwoInput(fs), NodeKind::Gate2 { a, b, .. }) => {
            let (va, vb) = (vals[a.index()], vals[b.index()]);
            for (i, f) in fs.iter().enumerate() {
                let sel = selector_negation(gate, i, key);
                match (va, vb) {
                    (SigVal::Known(ka), SigVal::Known(kb)) => {
                        let out = f.eval(ka, kb);
                        let mut clause = sel.clone();
                        clause.push(if out { z } else { !z });
                        enc.clause(&clause);
                    }
                    (SigVal::Known(ka), SigVal::Sym(lb)) => {
                        for wb in [false, true] {
                            let out = f.eval(ka, wb);
                            let mut clause = sel.clone();
                            clause.push(if wb { !lb } else { lb });
                            clause.push(if out { z } else { !z });
                            enc.clause(&clause);
                        }
                    }
                    (SigVal::Sym(la), SigVal::Known(kb)) => {
                        for wa in [false, true] {
                            let out = f.eval(wa, kb);
                            let mut clause = sel.clone();
                            clause.push(if wa { !la } else { la });
                            clause.push(if out { z } else { !z });
                            enc.clause(&clause);
                        }
                    }
                    (SigVal::Sym(la), SigVal::Sym(lb)) => {
                        for row in 0..4u8 {
                            let wa = row & 1 == 1;
                            let wb = row & 2 == 2;
                            let out = f.eval(wa, wb);
                            let mut clause = sel.clone();
                            clause.push(if wa { !la } else { la });
                            clause.push(if wb { !lb } else { lb });
                            clause.push(if out { z } else { !z });
                            enc.clause(&clause);
                        }
                    }
                }
            }
        }
        (Candidates::OneInput(fs), NodeKind::Gate1 { a, .. }) => {
            for (i, f) in fs.iter().enumerate() {
                let sel = selector_negation(gate, i, key);
                match vals[a.index()] {
                    SigVal::Known(ka) => {
                        let out = f.eval(ka);
                        let mut clause = sel.clone();
                        clause.push(if out { z } else { !z });
                        enc.clause(&clause);
                    }
                    SigVal::Sym(la) => {
                        for wa in [false, true] {
                            let out = f.eval(wa);
                            let mut clause = sel.clone();
                            clause.push(if wa { !la } else { la });
                            clause.push(if out { z } else { !z });
                            enc.clause(&clause);
                        }
                    }
                }
            }
        }
        (c, k) => unreachable!("camo cell shape mismatch: {c:?} at {k:?}"),
    }
    z
}

/// Asserts two encoded output vectors agree pairwise (without pinning
/// either to a constant). This is the batched-DIP *class-split blocker*:
/// asserting that all key copies agree on an already-discovered DIP forces
/// the next miter model onto a key-class split no batched DIP witnesses —
/// and once the oracle's observation pins both vectors to the same
/// constants, the agreement is implied, so the constraint is sound to keep
/// permanently.
///
/// # Panics
///
/// Panics on width mismatch.
pub fn assert_outputs_agree<S: ClauseSink>(
    enc: &mut CircuitEncoder<'_, S>,
    a: &[SigVal],
    b: &[SigVal],
) {
    assert_eq!(a.len(), b.len(), "output width mismatch");
    for (&x, &y) in a.iter().zip(b) {
        match (x, y) {
            (SigVal::Known(va), SigVal::Known(vb)) => {
                if va != vb {
                    enc.clause(&[]);
                }
            }
            (SigVal::Known(v), SigVal::Sym(l)) | (SigVal::Sym(l), SigVal::Known(v)) => {
                enc.assert(if v { l } else { !l });
            }
            (SigVal::Sym(la), SigVal::Sym(lb)) => enc.equal(la, lb),
        }
    }
}

/// Asserts `outputs == expected`; a `Known` mismatch adds the empty clause
/// (the constraint set is contradictory — exactly what happens when a
/// stochastic oracle returns an output no key can explain).
///
/// # Panics
///
/// Panics on width mismatch.
pub fn assert_outputs_equal<S: ClauseSink>(
    enc: &mut CircuitEncoder<'_, S>,
    outputs: &[SigVal],
    expected: &[bool],
) {
    assert_eq!(outputs.len(), expected.len(), "output width mismatch");
    for (&o, &y) in outputs.iter().zip(expected) {
        match o {
            SigVal::Known(v) => {
                if v != y {
                    enc.clause(&[]);
                }
            }
            SigVal::Sym(l) => enc.assert(if y { l } else { !l }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use gshe_logic::Netlist;
    use gshe_sat::{SolveResult, Solver};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keyed(scheme: CamoScheme) -> (Netlist, KeyedNetlist) {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(8);
        let k = camouflage(&nl, &picks, scheme, &mut rng).unwrap();
        (nl, k)
    }

    /// With the key literals forced to the correct key, the encoded circuit
    /// must agree with the original on every input pattern.
    fn check_encoding(scheme: CamoScheme) {
        let (nl, keyed) = keyed(scheme);
        let mut s = Solver::new();
        let key_lits: Vec<Lit> = (0..keyed.key_len())
            .map(|_| Lit::pos(s.new_var()))
            .collect();
        let copy = {
            let mut enc = CircuitEncoder::new(&mut s);
            assert_valid_key_codes(&mut enc, &keyed, &key_lits);
            encode_keyed(&mut enc, &keyed, &key_lits)
        };
        let correct = keyed.correct_key();
        for p in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            let mut asm: Vec<Lit> = Vec::new();
            for (l, &bit) in key_lits.iter().zip(&correct) {
                asm.push(if bit { *l } else { !*l });
            }
            for (l, &bit) in copy.inputs.iter().zip(&v) {
                asm.push(if bit { *l } else { !*l });
            }
            assert_eq!(s.solve_with(&asm), SolveResult::Sat, "{scheme} p={p}");
            let got: Vec<bool> = copy.outputs.iter().map(|&o| s.model_lit(o)).collect();
            assert_eq!(got, nl.evaluate(&v), "{scheme} p={p}");
        }
    }

    #[test]
    fn symbolic_encoding_matches_original_under_correct_key() {
        for scheme in CamoScheme::ALL {
            check_encoding(scheme);
        }
    }

    #[test]
    fn fixed_encoding_matches_symbolic() {
        let (nl, keyed) = keyed(CamoScheme::GsheAll16);
        let correct = keyed.correct_key();
        for p in [0u32, 7, 21, 31] {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            let mut s = Solver::new();
            let key_lits: Vec<Lit> = (0..keyed.key_len())
                .map(|_| Lit::pos(s.new_var()))
                .collect();
            let outs = {
                let mut enc = CircuitEncoder::new(&mut s);
                assert_valid_key_codes(&mut enc, &keyed, &key_lits);
                encode_keyed_fixed(&mut enc, &keyed, &key_lits, &v)
            };
            let asm: Vec<Lit> = key_lits
                .iter()
                .zip(&correct)
                .map(|(l, &bit)| if bit { *l } else { !*l })
                .collect();
            assert_eq!(s.solve_with(&asm), SolveResult::Sat);
            let got: Vec<bool> = outs
                .iter()
                .map(|&o| match o {
                    SigVal::Known(v) => v,
                    SigVal::Sym(l) => s.model_lit(l),
                })
                .collect();
            assert_eq!(got, nl.evaluate(&v), "p={p}");
        }
    }

    #[test]
    fn io_constraint_prunes_wrong_keys() {
        let (nl, keyed) = keyed(CamoScheme::GsheAll16);
        let mut s = Solver::new();
        let key_lits: Vec<Lit> = (0..keyed.key_len())
            .map(|_| Lit::pos(s.new_var()))
            .collect();
        {
            let mut enc = CircuitEncoder::new(&mut s);
            assert_valid_key_codes(&mut enc, &keyed, &key_lits);
            // Constrain on the full truth table: only functionally correct
            // keys remain.
            for p in 0..32u32 {
                let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
                let y = nl.evaluate(&v);
                let outs = encode_keyed_fixed(&mut enc, &keyed, &key_lits, &v);
                assert_outputs_equal(&mut enc, &outs, &y);
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let key: Vec<bool> = key_lits.iter().map(|&l| s.model_lit(l)).collect();
        let resolved = keyed.resolve(&key).unwrap();
        for p in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            assert_eq!(
                resolved.evaluate(&v),
                nl.evaluate(&v),
                "recovered key wrong at {p}"
            );
        }
    }

    #[test]
    fn contradictory_io_makes_unsat() {
        let (nl, keyed) = keyed(CamoScheme::GsheAll16);
        let mut s = Solver::new();
        let key_lits: Vec<Lit> = (0..keyed.key_len())
            .map(|_| Lit::pos(s.new_var()))
            .collect();
        {
            let mut enc = CircuitEncoder::new(&mut s);
            assert_valid_key_codes(&mut enc, &keyed, &key_lits);
            let v = vec![false; 5];
            let y = nl.evaluate(&v);
            let flipped: Vec<bool> = y.iter().map(|&b| !b).collect();
            let outs = encode_keyed_fixed(&mut enc, &keyed, &key_lits, &v);
            assert_outputs_equal(&mut enc, &outs, &y);
            let outs2 = encode_keyed_fixed(&mut enc, &keyed, &key_lits, &v);
            assert_outputs_equal(&mut enc, &outs2, &flipped);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
