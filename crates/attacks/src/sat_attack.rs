//! The oracle-guided SAT attack of Subramanyan et al. (\[8\], \[37\]).
//!
//! Two copies of the keyed circuit share the primary inputs; a miter
//! asserts their outputs differ. While SAT, the model's input assignment is
//! a **discriminating input pattern (DIP)**: it distinguishes at least two
//! key classes. The oracle is queried on the DIP and both key copies are
//! constrained to reproduce the observed outputs, ruling out at least one
//! wrong key class per iteration. When the miter goes UNSAT, any key
//! consistent with the accumulated I/O constraints is functionally correct
//! (for a deterministic oracle).

use crate::coi::CoiMode;
use crate::dip_engine::{refine, RefinePolicy};
use crate::oracle::Oracle;
use gshe_camo::KeyedNetlist;
use gshe_sat::{RestartMode, SimplifyMode, SolverStats};
use std::time::Duration;

/// Attack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// Wall-clock budget (the paper's t-o column; 48 h there, seconds to
    /// minutes at our scale).
    pub timeout: Duration,
    /// Hard cap on DIP iterations (`None` = unlimited).
    pub max_iterations: Option<u64>,
    /// Conflict budget per solver call; the attack checks the wall clock
    /// between budget slices.
    pub conflicts_per_slice: u64,
    /// Variable budget (mirrors the paper's lglib 134M-variable failure).
    pub max_vars: Option<usize>,
    /// DIPs discovered per solver round (clamped to `1..=64`): the round's
    /// patterns are answered by **one** bit-parallel
    /// [`Oracle::query_block`] call instead of one scalar query each. `1`
    /// (the default) reproduces the historical one-query-per-iteration
    /// loop bit-for-bit on seeded runs;
    /// [`crate::dip_engine::DEFAULT_BATCH_WIDTH`] is the recommended
    /// throughput setting.
    pub dip_batch: usize,
    /// Restart pacing for the shared solver:
    /// [`RestartMode::LbdEma`] (Glucose-style adaptive, the default) or
    /// [`RestartMode::Luby`].
    pub restart_mode: RestartMode,
    /// Cone-of-influence miter reduction ([`CoiMode::Auto`] by default:
    /// designs with at least [`crate::coi::COI_AUTO_THRESHOLD`] nodes
    /// are attacked through the cloaked cells' output cone; smaller
    /// instances keep the historical full-miter trace bit-for-bit).
    pub coi: CoiMode,
    /// SAT simplification for the shared incremental solver
    /// ([`SimplifyMode::Auto`] by default: instances with at least
    /// [`gshe_sat::SIMPLIFY_AUTO_THRESHOLD`] problem clauses are
    /// preprocessed — subsumption, self-subsumption strengthening, and
    /// bounded variable elimination — and vivified at restart boundaries;
    /// the same gate enables Plaisted–Greenbaum single-sided miter
    /// encoding. Smaller instances keep the historical solver trace
    /// bit-for-bit).
    pub simplify: SimplifyMode,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            timeout: Duration::from_secs(60),
            max_iterations: None,
            conflicts_per_slice: 20_000,
            max_vars: Some(134_217_724),
            dip_batch: 1,
            restart_mode: RestartMode::default(),
            coi: CoiMode::default(),
            simplify: SimplifyMode::default(),
        }
    }
}

impl AttackConfig {
    /// Convenience constructor with a wall-clock budget in seconds.
    pub fn with_timeout_secs(secs: u64) -> Self {
        AttackConfig {
            timeout: Duration::from_secs(secs),
            ..Default::default()
        }
    }

    /// Returns the configuration with the DIP batch width set to `width`.
    pub fn with_dip_batch(self, width: usize) -> Self {
        AttackConfig {
            dip_batch: width,
            ..self
        }
    }

    /// Returns the configuration with the solver restart mode set.
    pub fn with_restart_mode(self, restart_mode: RestartMode) -> Self {
        AttackConfig {
            restart_mode,
            ..self
        }
    }

    /// Returns the configuration with the cone-of-influence mode set.
    pub fn with_coi(self, coi: CoiMode) -> Self {
        AttackConfig { coi, ..self }
    }

    /// Alias of [`AttackConfig::with_coi`] for spec-driven callers: the
    /// campaign layer resolves the `coi_mode` spec key (including
    /// `"auto:<nodes>"` thresholds via [`CoiMode::parse`]) and threads it
    /// here.
    pub fn with_coi_mode(self, coi: CoiMode) -> Self {
        self.with_coi(coi)
    }

    /// Returns the configuration with the SAT simplification mode set.
    pub fn with_simplify(self, simplify: SimplifyMode) -> Self {
        AttackConfig { simplify, ..self }
    }

    /// Alias of [`AttackConfig::with_simplify`] for spec-driven callers:
    /// the campaign layer resolves the `sat_simplify` spec key (including
    /// `"auto:<clauses>"` thresholds via [`SimplifyMode::parse`]) and
    /// threads it here.
    pub fn with_simplify_mode(self, simplify: SimplifyMode) -> Self {
        self.with_simplify(simplify)
    }
}

/// How an attack ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStatus {
    /// The DIP loop converged and a key was extracted.
    Success,
    /// The wall-clock budget ran out (the paper's "t-o").
    Timeout,
    /// The solver's resource budget was exhausted (the paper's
    /// "computational failure" rows).
    ResourceExhausted,
    /// The accumulated I/O constraints became contradictory — no key can
    /// explain the oracle's answers. The signature failure mode against the
    /// stochastic GSHE oracle (Sec. V-B).
    Inconsistent,
}

/// Attack result.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Terminal status.
    pub status: AttackStatus,
    /// The extracted key (on success).
    pub key: Option<Vec<bool>>,
    /// DIP iterations performed.
    pub iterations: u64,
    /// Oracle queries issued.
    pub queries: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Final solver statistics.
    pub solver_stats: SolverStats,
}

impl AttackOutcome {
    /// `true` when a key was produced.
    pub fn succeeded(&self) -> bool {
        self.status == AttackStatus::Success
    }
}

/// Runs the SAT attack against `keyed` (attacker's view: structure and
/// candidate sets only) using `oracle` as the working chip.
///
/// This is the [`RefinePolicy::Single`] specialization of the shared
/// [DIP-refinement engine](crate::dip_engine).
pub fn sat_attack(
    keyed: &KeyedNetlist,
    oracle: &mut dyn Oracle,
    config: &AttackConfig,
) -> AttackOutcome {
    refine(keyed, oracle, config, &RefinePolicy::Single)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::verify_key;
    use crate::oracle::{NetlistOracle, StochasticOracle};
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use gshe_logic::{GeneratorConfig, Netlist, NetlistGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attack_and_verify(nl: &Netlist, scheme: CamoScheme, fraction: f64) -> AttackOutcome {
        let picks = select_gates(nl, fraction, 55);
        let mut rng = StdRng::seed_from_u64(55);
        let keyed = camouflage(nl, &picks, scheme, &mut rng).unwrap();
        let mut oracle = NetlistOracle::new(nl);
        let out = sat_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(30));
        assert_eq!(out.status, AttackStatus::Success, "{scheme}");
        let key = out.key.as_ref().unwrap();
        let v = verify_key(nl, &keyed, key).unwrap();
        assert!(
            v.functionally_equivalent,
            "{scheme}: recovered key is wrong"
        );
        out
    }

    #[test]
    fn c17_fully_camouflaged_is_broken_for_every_scheme() {
        let nl = parse_bench(C17_BENCH).unwrap();
        for scheme in CamoScheme::ALL {
            attack_and_verify(&nl, scheme, 1.0);
        }
    }

    #[test]
    fn generated_circuit_20pct_gshe16() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 10, 6, 150).with_seed(2))
            .unwrap()
            .generate();
        let out = attack_and_verify(&nl, CamoScheme::GsheAll16, 0.2);
        assert!(out.iterations > 0);
        assert_eq!(out.queries, out.iterations);
    }

    #[test]
    fn more_functions_need_no_fewer_dips() {
        // Sanity on the paper's core observation: richer candidate sets
        // do not make the attack easier (same circuit, same picks).
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 80).with_seed(4))
            .unwrap()
            .generate();
        let small = attack_and_verify(&nl, CamoScheme::InvBuf, 0.25);
        let big = attack_and_verify(&nl, CamoScheme::GsheAll16, 0.25);
        assert!(big.solver_stats.decisions >= small.solver_stats.decisions);
    }

    #[test]
    fn zero_timeout_reports_timeout() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut oracle = NetlistOracle::new(&nl);
        let config = AttackConfig {
            timeout: Duration::from_millis(0),
            conflicts_per_slice: 1,
            ..Default::default()
        };
        let out = sat_attack(&keyed, &mut oracle, &config);
        assert_eq!(out.status, AttackStatus::Timeout);
        assert!(out.key.is_none());
    }

    #[test]
    fn stochastic_oracle_defeats_the_attack() {
        // Sec. V-B: with a noisy oracle the attack either derives a wrong
        // key or collapses to inconsistency — it must not recover the
        // correct function reliably.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 60).with_seed(6))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.5, 9);
        let mut rng = StdRng::seed_from_u64(9);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut failures = 0;
        let trials = 4;
        for seed in 0..trials {
            let mut oracle = StochasticOracle::new(&keyed, 0.25, seed);
            let out = sat_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(20));
            let broken = match out.status {
                AttackStatus::Inconsistent => true,
                AttackStatus::Success => {
                    let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
                    !v.functionally_equivalent
                }
                _ => true,
            };
            failures += broken as usize;
        }
        assert!(
            failures >= trials as usize - 1,
            "attack survived noise too often"
        );
    }
}
