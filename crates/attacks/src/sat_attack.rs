//! The oracle-guided SAT attack of Subramanyan et al. (\[8\], \[37\]).
//!
//! Two copies of the keyed circuit share the primary inputs; a miter
//! asserts their outputs differ. While SAT, the model's input assignment is
//! a **discriminating input pattern (DIP)**: it distinguishes at least two
//! key classes. The oracle is queried on the DIP and both key copies are
//! constrained to reproduce the observed outputs, ruling out at least one
//! wrong key class per iteration. When the miter goes UNSAT, any key
//! consistent with the accumulated I/O constraints is functionally correct
//! (for a deterministic oracle).

use crate::encode::{
    assert_outputs_equal, assert_valid_key_codes, encode_keyed, encode_keyed_fixed,
};
use crate::oracle::Oracle;
use gshe_camo::KeyedNetlist;
use gshe_sat::solver::Budget;
use gshe_sat::{CircuitEncoder, Lit, SolveResult, Solver, SolverStats};
use std::time::{Duration, Instant};

/// Attack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// Wall-clock budget (the paper's t-o column; 48 h there, seconds to
    /// minutes at our scale).
    pub timeout: Duration,
    /// Hard cap on DIP iterations (`None` = unlimited).
    pub max_iterations: Option<u64>,
    /// Conflict budget per solver call; the attack checks the wall clock
    /// between budget slices.
    pub conflicts_per_slice: u64,
    /// Variable budget (mirrors the paper's lglib 134M-variable failure).
    pub max_vars: Option<usize>,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            timeout: Duration::from_secs(60),
            max_iterations: None,
            conflicts_per_slice: 20_000,
            max_vars: Some(134_217_724),
        }
    }
}

impl AttackConfig {
    /// Convenience constructor with a wall-clock budget in seconds.
    pub fn with_timeout_secs(secs: u64) -> Self {
        AttackConfig {
            timeout: Duration::from_secs(secs),
            ..Default::default()
        }
    }
}

/// How an attack ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStatus {
    /// The DIP loop converged and a key was extracted.
    Success,
    /// The wall-clock budget ran out (the paper's "t-o").
    Timeout,
    /// The solver's resource budget was exhausted (the paper's
    /// "computational failure" rows).
    ResourceExhausted,
    /// The accumulated I/O constraints became contradictory — no key can
    /// explain the oracle's answers. The signature failure mode against the
    /// stochastic GSHE oracle (Sec. V-B).
    Inconsistent,
}

/// Attack result.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Terminal status.
    pub status: AttackStatus,
    /// The extracted key (on success).
    pub key: Option<Vec<bool>>,
    /// DIP iterations performed.
    pub iterations: u64,
    /// Oracle queries issued.
    pub queries: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Final solver statistics.
    pub solver_stats: SolverStats,
}

impl AttackOutcome {
    /// `true` when a key was produced.
    pub fn succeeded(&self) -> bool {
        self.status == AttackStatus::Success
    }
}

/// Solves with the wall clock checked between conflict-budget slices.
/// Returns `None` on deadline/budget exhaustion.
pub(crate) fn solve_sliced(
    solver: &mut Solver,
    assumptions: &[Lit],
    deadline: Instant,
    slice: u64,
) -> Option<SolveResult> {
    loop {
        solver.set_budget(Budget {
            max_conflicts: Some(slice),
            max_vars: None,
        });
        match solver.solve_with(assumptions) {
            SolveResult::Unknown => {
                if Instant::now() >= deadline {
                    return None;
                }
            }
            done => return Some(done),
        }
    }
}

/// Runs the SAT attack against `keyed` (attacker's view: structure and
/// candidate sets only) using `oracle` as the working chip.
pub fn sat_attack(
    keyed: &KeyedNetlist,
    oracle: &mut dyn Oracle,
    config: &AttackConfig,
) -> AttackOutcome {
    let start = Instant::now();
    let deadline = start + config.timeout;
    let mut solver = Solver::new();
    solver.set_budget(Budget {
        max_conflicts: None,
        max_vars: config.max_vars,
    });

    // Two key copies + shared-input symbolic copies + miter.
    let key1: Vec<Lit> = (0..keyed.key_len())
        .map(|_| Lit::pos(solver.new_var()))
        .collect();
    let key2: Vec<Lit> = (0..keyed.key_len())
        .map(|_| Lit::pos(solver.new_var()))
        .collect();
    let diff = {
        let mut enc = CircuitEncoder::new(&mut solver);
        assert_valid_key_codes(&mut enc, keyed, &key1);
        assert_valid_key_codes(&mut enc, keyed, &key2);
        let copy1 = encode_keyed(&mut enc, keyed, &key1);
        let copy2 = encode_keyed(&mut enc, keyed, &key2);
        // Share the primary inputs between the copies.
        for (a, b) in copy1.inputs.iter().zip(&copy2.inputs) {
            enc.equal(*a, *b);
        }
        let diff = enc.miter(&copy1.outputs, &copy2.outputs);
        // Remember input literals via copy1.
        (diff, copy1.inputs)
    };
    let (diff_lit, input_lits) = diff;

    let mut iterations = 0u64;
    let queries_before = oracle.queries();

    let finish = |status: AttackStatus,
                  key: Option<Vec<bool>>,
                  iterations: u64,
                  solver: &Solver,
                  oracle: &dyn Oracle| AttackOutcome {
        status,
        key,
        iterations,
        queries: oracle.queries() - queries_before,
        elapsed: start.elapsed(),
        solver_stats: solver.stats(),
    };

    loop {
        if Instant::now() >= deadline {
            return finish(AttackStatus::Timeout, None, iterations, &solver, oracle);
        }
        if let Some(max) = config.max_iterations {
            if iterations >= max {
                return finish(AttackStatus::Timeout, None, iterations, &solver, oracle);
            }
        }
        match solve_sliced(
            &mut solver,
            &[diff_lit],
            deadline,
            config.conflicts_per_slice,
        ) {
            None => return finish(AttackStatus::Timeout, None, iterations, &solver, oracle),
            Some(SolveResult::Sat) => {
                iterations += 1;
                // Extract the DIP and query the oracle.
                let dip: Vec<bool> = input_lits.iter().map(|&l| solver.model_lit(l)).collect();
                let y = oracle.query(&dip);
                // Constrain both key copies to reproduce the observation.
                let mut enc = CircuitEncoder::new(&mut solver);
                for key in [&key1, &key2] {
                    let outs = encode_keyed_fixed(&mut enc, keyed, key, &dip);
                    assert_outputs_equal(&mut enc, &outs, &y);
                }
            }
            Some(SolveResult::Unsat) => {
                // Converged: extract any key consistent with the I/O
                // constraints (without the miter assumption).
                return match solve_sliced(&mut solver, &[], deadline, config.conflicts_per_slice) {
                    None => finish(AttackStatus::Timeout, None, iterations, &solver, oracle),
                    Some(SolveResult::Sat) => {
                        let key: Vec<bool> = key1.iter().map(|&l| solver.model_lit(l)).collect();
                        finish(
                            AttackStatus::Success,
                            Some(key),
                            iterations,
                            &solver,
                            oracle,
                        )
                    }
                    Some(SolveResult::Unsat) => finish(
                        AttackStatus::Inconsistent,
                        None,
                        iterations,
                        &solver,
                        oracle,
                    ),
                    Some(SolveResult::Unknown) => finish(
                        AttackStatus::ResourceExhausted,
                        None,
                        iterations,
                        &solver,
                        oracle,
                    ),
                };
            }
            Some(SolveResult::Unknown) => {
                return finish(
                    AttackStatus::ResourceExhausted,
                    None,
                    iterations,
                    &solver,
                    oracle,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::verify_key;
    use crate::oracle::{NetlistOracle, StochasticOracle};
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use gshe_logic::{GeneratorConfig, Netlist, NetlistGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attack_and_verify(nl: &Netlist, scheme: CamoScheme, fraction: f64) -> AttackOutcome {
        let picks = select_gates(nl, fraction, 55);
        let mut rng = StdRng::seed_from_u64(55);
        let keyed = camouflage(nl, &picks, scheme, &mut rng).unwrap();
        let mut oracle = NetlistOracle::new(nl);
        let out = sat_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(30));
        assert_eq!(out.status, AttackStatus::Success, "{scheme}");
        let key = out.key.as_ref().unwrap();
        let v = verify_key(nl, &keyed, key).unwrap();
        assert!(
            v.functionally_equivalent,
            "{scheme}: recovered key is wrong"
        );
        out
    }

    #[test]
    fn c17_fully_camouflaged_is_broken_for_every_scheme() {
        let nl = parse_bench(C17_BENCH).unwrap();
        for scheme in CamoScheme::ALL {
            attack_and_verify(&nl, scheme, 1.0);
        }
    }

    #[test]
    fn generated_circuit_20pct_gshe16() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 10, 6, 150).with_seed(2))
            .unwrap()
            .generate();
        let out = attack_and_verify(&nl, CamoScheme::GsheAll16, 0.2);
        assert!(out.iterations > 0);
        assert_eq!(out.queries, out.iterations);
    }

    #[test]
    fn more_functions_need_no_fewer_dips() {
        // Sanity on the paper's core observation: richer candidate sets
        // do not make the attack easier (same circuit, same picks).
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 80).with_seed(4))
            .unwrap()
            .generate();
        let small = attack_and_verify(&nl, CamoScheme::InvBuf, 0.25);
        let big = attack_and_verify(&nl, CamoScheme::GsheAll16, 0.25);
        assert!(big.solver_stats.decisions >= small.solver_stats.decisions);
    }

    #[test]
    fn zero_timeout_reports_timeout() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut oracle = NetlistOracle::new(&nl);
        let config = AttackConfig {
            timeout: Duration::from_millis(0),
            conflicts_per_slice: 1,
            ..Default::default()
        };
        let out = sat_attack(&keyed, &mut oracle, &config);
        assert_eq!(out.status, AttackStatus::Timeout);
        assert!(out.key.is_none());
    }

    #[test]
    fn stochastic_oracle_defeats_the_attack() {
        // Sec. V-B: with a noisy oracle the attack either derives a wrong
        // key or collapses to inconsistency — it must not recover the
        // correct function reliably.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 60).with_seed(6))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.5, 9);
        let mut rng = StdRng::seed_from_u64(9);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut failures = 0;
        let trials = 4;
        for seed in 0..trials {
            let mut oracle = StochasticOracle::new(&keyed, 0.25, seed);
            let out = sat_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(20));
            let broken = match out.status {
                AttackStatus::Inconsistent => true,
                AttackStatus::Success => {
                    let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
                    !v.functionally_equivalent
                }
                _ => true,
            };
            failures += broken as usize;
        }
        assert!(
            failures >= trials as usize - 1,
            "attack survived noise too often"
        );
    }
}
