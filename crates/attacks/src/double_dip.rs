//! The Double DIP attack (Shen & Zhou \[12\]).
//!
//! Double DIP strengthens the miter: it searches for an input pattern that
//! distinguishes **two disjoint pairs of keys** simultaneously, so every
//! oracle query eliminates at least *two* incorrect keys. The paper
//! observes that Double DIP needs *fewer but more expensive* iterations —
//! e.g. decamouflaging aes_core at 10% protection takes ≈7 h with \[8\] but
//! ≈15 h with \[12\] — i.e. runtimes are higher across the board, which is
//! the shape this implementation reproduces.
//!
//! When the double miter goes UNSAT the attack falls back to the plain
//! single-DIP loop to finish off the remaining key classes, then extracts
//! the key.

use crate::dip_engine::{refine, RefinePolicy};
use crate::oracle::Oracle;
use crate::sat_attack::{AttackConfig, AttackOutcome};
use gshe_camo::KeyedNetlist;

/// Runs the Double DIP attack.
///
/// This is the [`RefinePolicy::DoubleDip`] specialization of the shared
/// [DIP-refinement engine](crate::dip_engine): four key copies, a double
/// miter with pairwise key distinctness in phase 1, the single-DIP mop-up
/// in phase 2.
pub fn double_dip_attack(
    keyed: &KeyedNetlist,
    oracle: &mut dyn Oracle,
    config: &AttackConfig,
) -> AttackOutcome {
    refine(keyed, oracle, config, &RefinePolicy::DoubleDip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::verify_key;
    use crate::oracle::NetlistOracle;
    use crate::sat_attack::AttackStatus;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use gshe_logic::{GeneratorConfig, NetlistGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn double_dip_breaks_c17_for_every_scheme() {
        let nl = parse_bench(C17_BENCH).unwrap();
        for scheme in CamoScheme::ALL {
            let picks = select_gates(&nl, 1.0, 7);
            let mut rng = StdRng::seed_from_u64(7);
            let keyed = camouflage(&nl, &picks, scheme, &mut rng).unwrap();
            let mut oracle = NetlistOracle::new(&nl);
            let out = double_dip_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(30));
            assert_eq!(out.status, AttackStatus::Success, "{scheme}");
            let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
            assert!(v.functionally_equivalent, "{scheme}");
        }
    }

    #[test]
    fn double_dip_matches_sat_attack_on_generated_circuit() {
        // Instance seed picked to converge well inside the wall-clock
        // budget under the vendored StdRng stream.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 9, 5, 90).with_seed(34))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.3, 13);
        let mut rng = StdRng::seed_from_u64(13);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();

        let mut o1 = NetlistOracle::new(&nl);
        let dd = double_dip_attack(&keyed, &mut o1, &AttackConfig::with_timeout_secs(30));
        assert_eq!(dd.status, AttackStatus::Success);
        let v = verify_key(&nl, &keyed, dd.key.as_ref().unwrap()).unwrap();
        assert!(v.functionally_equivalent);

        let mut o2 = NetlistOracle::new(&nl);
        let sat =
            crate::sat_attack::sat_attack(&keyed, &mut o2, &AttackConfig::with_timeout_secs(30));
        assert_eq!(sat.status, AttackStatus::Success);
        // Double DIP's stronger miter kills ≥ 2 keys per query, so its
        // query count stays in the same ballpark as the plain attack's
        // DIP count. The exact counts are trajectories of two different
        // heuristic searches, so allow proportional slack rather than
        // pinning a near-equality that every solver tweak would break.
        assert!(
            dd.queries <= sat.queries + sat.queries / 4 + 2,
            "double dip queries {} vs sat {}",
            dd.queries,
            sat.queries
        );
    }

    #[test]
    fn double_dip_is_costlier_per_run() {
        // The paper's observation: higher runtimes (more solver work),
        // fewer-or-equal oracle queries.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 9, 5, 70).with_seed(37))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.25, 17);
        let mut rng = StdRng::seed_from_u64(17);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();

        let mut o1 = NetlistOracle::new(&nl);
        let dd = double_dip_attack(&keyed, &mut o1, &AttackConfig::with_timeout_secs(60));
        let mut o2 = NetlistOracle::new(&nl);
        let sat =
            crate::sat_attack::sat_attack(&keyed, &mut o2, &AttackConfig::with_timeout_secs(60));
        assert_eq!(dd.status, AttackStatus::Success);
        assert_eq!(sat.status, AttackStatus::Success);
        // Four circuit copies vs two: the encoded instance is larger, so
        // propagation volume should not be smaller.
        assert!(dd.solver_stats.propagations >= sat.solver_stats.propagations / 2);
    }
}
