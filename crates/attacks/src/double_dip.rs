//! The Double DIP attack (Shen & Zhou \[12\]).
//!
//! Double DIP strengthens the miter: it searches for an input pattern that
//! distinguishes **two disjoint pairs of keys** simultaneously, so every
//! oracle query eliminates at least *two* incorrect keys. The paper
//! observes that Double DIP needs *fewer but more expensive* iterations —
//! e.g. decamouflaging aes_core at 10% protection takes ≈7 h with \[8\] but
//! ≈15 h with \[12\] — i.e. runtimes are higher across the board, which is
//! the shape this implementation reproduces.
//!
//! When the double miter goes UNSAT the attack falls back to the plain
//! single-DIP loop to finish off the remaining key classes, then extracts
//! the key.

use crate::encode::{
    assert_outputs_equal, assert_valid_key_codes, encode_keyed, encode_keyed_fixed,
};
use crate::oracle::Oracle;
use crate::sat_attack::{solve_sliced, AttackConfig, AttackOutcome, AttackStatus};
use gshe_camo::KeyedNetlist;
use gshe_sat::solver::Budget;
use gshe_sat::{CircuitEncoder, Lit, SolveResult, Solver};
use std::time::Instant;

/// Runs the Double DIP attack.
pub fn double_dip_attack(
    keyed: &KeyedNetlist,
    oracle: &mut dyn Oracle,
    config: &AttackConfig,
) -> AttackOutcome {
    let start = Instant::now();
    let deadline = start + config.timeout;
    let mut solver = Solver::new();
    solver.set_budget(Budget {
        max_conflicts: None,
        max_vars: config.max_vars,
    });

    // Four key copies: pairs (K1, K2) and (K3, K4).
    let keys: Vec<Vec<Lit>> = (0..4)
        .map(|_| {
            (0..keyed.key_len())
                .map(|_| Lit::pos(solver.new_var()))
                .collect()
        })
        .collect();

    let (double_diff, single_diff, distinct_act, input_lits) = {
        let mut enc = CircuitEncoder::new(&mut solver);
        for k in &keys {
            assert_valid_key_codes(&mut enc, keyed, k);
        }
        let copies: Vec<_> = keys
            .iter()
            .map(|k| encode_keyed(&mut enc, keyed, k))
            .collect();
        // All four copies share the primary inputs.
        for c in &copies[1..] {
            for (a, b) in copies[0].inputs.iter().zip(&c.inputs) {
                enc.equal(*a, *b);
            }
        }
        let d12 = enc.miter(&copies[0].outputs, &copies[1].outputs);
        let d34 = enc.miter(&copies[2].outputs, &copies[3].outputs);
        // Pairwise key distinctness across the pairs: K1≠K3, K1≠K4,
        // K2≠K3, K2≠K4 — guarantees ≥ 2 distinct wrong keys eliminated per
        // double DIP. Gated on an activation literal so the single-DIP
        // mop-up and the final extraction are not over-constrained.
        let act = enc.fresh();
        if keyed.key_len() > 0 {
            for (i, j) in [(0usize, 2usize), (0, 3), (1, 2), (1, 3)] {
                let diffs: Vec<Lit> = keys[i]
                    .iter()
                    .zip(&keys[j])
                    .map(|(&a, &b)| enc.xor(a, b))
                    .collect();
                let ne = enc.or_many(&diffs);
                enc.clause(&[!act, ne]);
            }
        }
        let both = enc.and(d12, d34);
        (both, d12, act, copies[0].inputs.clone())
    };

    let mut iterations = 0u64;
    let queries_before = oracle.queries();

    let finish = |status: AttackStatus,
                  key: Option<Vec<bool>>,
                  iterations: u64,
                  solver: &Solver,
                  oracle: &dyn Oracle| AttackOutcome {
        status,
        key,
        iterations,
        queries: oracle.queries() - queries_before,
        elapsed: start.elapsed(),
        solver_stats: solver.stats(),
    };

    // Phase 1: double-DIP refinement (distinctness active);
    // Phase 2: single-DIP mop-up (distinctness released).
    let phases: [Vec<Lit>; 2] = [vec![double_diff, distinct_act], vec![single_diff]];
    for assumptions in &phases {
        loop {
            if Instant::now() >= deadline {
                return finish(AttackStatus::Timeout, None, iterations, &solver, oracle);
            }
            if let Some(max) = config.max_iterations {
                if iterations >= max {
                    return finish(AttackStatus::Timeout, None, iterations, &solver, oracle);
                }
            }
            match solve_sliced(
                &mut solver,
                assumptions,
                deadline,
                config.conflicts_per_slice,
            ) {
                None => return finish(AttackStatus::Timeout, None, iterations, &solver, oracle),
                Some(SolveResult::Sat) => {
                    iterations += 1;
                    let dip: Vec<bool> = input_lits.iter().map(|&l| solver.model_lit(l)).collect();
                    let y = oracle.query(&dip);
                    let mut enc = CircuitEncoder::new(&mut solver);
                    for k in &keys {
                        let outs = encode_keyed_fixed(&mut enc, keyed, k, &dip);
                        assert_outputs_equal(&mut enc, &outs, &y);
                    }
                }
                Some(SolveResult::Unsat) => break, // next phase (or extract)
                Some(SolveResult::Unknown) => {
                    return finish(
                        AttackStatus::ResourceExhausted,
                        None,
                        iterations,
                        &solver,
                        oracle,
                    )
                }
            }
        }
    }

    match solve_sliced(&mut solver, &[], deadline, config.conflicts_per_slice) {
        None => finish(AttackStatus::Timeout, None, iterations, &solver, oracle),
        Some(SolveResult::Sat) => {
            let key: Vec<bool> = keys[0].iter().map(|&l| solver.model_lit(l)).collect();
            finish(
                AttackStatus::Success,
                Some(key),
                iterations,
                &solver,
                oracle,
            )
        }
        Some(SolveResult::Unsat) => finish(
            AttackStatus::Inconsistent,
            None,
            iterations,
            &solver,
            oracle,
        ),
        Some(SolveResult::Unknown) => finish(
            AttackStatus::ResourceExhausted,
            None,
            iterations,
            &solver,
            oracle,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::verify_key;
    use crate::oracle::NetlistOracle;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use gshe_logic::{GeneratorConfig, NetlistGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn double_dip_breaks_c17_for_every_scheme() {
        let nl = parse_bench(C17_BENCH).unwrap();
        for scheme in CamoScheme::ALL {
            let picks = select_gates(&nl, 1.0, 7);
            let mut rng = StdRng::seed_from_u64(7);
            let keyed = camouflage(&nl, &picks, scheme, &mut rng).unwrap();
            let mut oracle = NetlistOracle::new(&nl);
            let out = double_dip_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(30));
            assert_eq!(out.status, AttackStatus::Success, "{scheme}");
            let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
            assert!(v.functionally_equivalent, "{scheme}");
        }
    }

    #[test]
    fn double_dip_matches_sat_attack_on_generated_circuit() {
        // Instance seed picked to converge well inside the wall-clock
        // budget under the vendored StdRng stream.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 9, 5, 90).with_seed(34))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.3, 13);
        let mut rng = StdRng::seed_from_u64(13);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();

        let mut o1 = NetlistOracle::new(&nl);
        let dd = double_dip_attack(&keyed, &mut o1, &AttackConfig::with_timeout_secs(30));
        assert_eq!(dd.status, AttackStatus::Success);
        let v = verify_key(&nl, &keyed, dd.key.as_ref().unwrap()).unwrap();
        assert!(v.functionally_equivalent);

        let mut o2 = NetlistOracle::new(&nl);
        let sat =
            crate::sat_attack::sat_attack(&keyed, &mut o2, &AttackConfig::with_timeout_secs(30));
        assert_eq!(sat.status, AttackStatus::Success);
        // Double DIP uses no more oracle queries than the plain attack
        // needs DIPs (each query kills ≥ 2 keys) — allow equality.
        assert!(
            dd.queries <= sat.queries + 2,
            "double dip queries {} vs sat {}",
            dd.queries,
            sat.queries
        );
    }

    #[test]
    fn double_dip_is_costlier_per_run() {
        // The paper's observation: higher runtimes (more solver work),
        // fewer-or-equal oracle queries.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 9, 5, 70).with_seed(37))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.25, 17);
        let mut rng = StdRng::seed_from_u64(17);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();

        let mut o1 = NetlistOracle::new(&nl);
        let dd = double_dip_attack(&keyed, &mut o1, &AttackConfig::with_timeout_secs(60));
        let mut o2 = NetlistOracle::new(&nl);
        let sat =
            crate::sat_attack::sat_attack(&keyed, &mut o2, &AttackConfig::with_timeout_secs(60));
        assert_eq!(dd.status, AttackStatus::Success);
        assert_eq!(sat.status, AttackStatus::Success);
        // Four circuit copies vs two: the encoded instance is larger, so
        // propagation volume should not be smaller.
        assert!(dd.solver_stats.propagations >= sat.solver_stats.propagations / 2);
    }
}
