//! The composable **oracle stack**: noise × rotation as layers over one
//! bit-parallel evaluation engine.
//!
//! The paper's two defenses — stochastic switching (Sec. V-B) and
//! polymorphic key rotation (Sec. V-C) — are knobs on one device
//! substrate, not separate chips: a GSHE fabric can rotate its key *and*
//! clock its switches into the stochastic regime at the same time
//! (dynamic camouflaging à la Rangarajan et al., arXiv:1811.06012; the
//! deterministic-to-probabilistic continuum of arXiv:1904.00421). This
//! module models that composability directly:
//!
//! * [`EvalLayer`] — the base: a bit-parallel pass over a netlist, either
//!   exact ([`gshe_logic::Simulator`] semantics) or fault-injecting
//!   ([`FaultSimulator`] with an [`ErrorProfile`]);
//! * an optional **rotation layer** — epoch-segmented key resolution: the
//!   chip answers `period` queries per key, then draws a fresh random key
//!   and installs the re-resolved netlist into the base;
//! * an optional **caching layer** — lives in `gshe-campaign` (the cache
//!   is campaign-wide infrastructure) and composes over the bare exact
//!   stack only, the one configuration whose answers are memoizable.
//!
//! Every layer is `query_block`-first, so any composition answers 64
//! patterns per pass end to end. The legacy oracles are thin adapters
//! over the stack ([`crate::NetlistOracle`], [`crate::StochasticOracle`],
//! [`crate::RotatingOracle`]) with byte-identical seeded behaviour.
//!
//! ## Seed-salt composition
//!
//! A stack consumes up to two independent RNG streams, each derived from
//! the *same* caller seed with a layer-specific salt, so the layers
//! compose without stealing each other's draws:
//!
//! * noise stream: `seed ^ 0x570C_4A57` (the historical
//!   `StochasticOracle` derivation);
//! * rotation key stream: `seed ^ 0xD07A7E` (the historical
//!   `RotatingOracle` derivation).
//!
//! A noise-only or rotation-only stack therefore reproduces its legacy
//! oracle's stream exactly, and the combined stack draws both streams
//! from one seed without perturbing either.
//!
//! ## Noise-stream discipline under rotation
//!
//! The chip's reference semantics are *per query*: rotation counts
//! queries, and the scalar noise stream draws one `gen_bool` per noisy
//! node per query. A noise-only stack keeps the historical fast block
//! path (one [`gshe_logic::bernoulli_mask`] per noisy node per pass — a
//! different, equally valid sample stream, pinned by pre-stack
//! campaigns). Once rotation is stacked on top, the block path switches
//! to the engine's **scalar-stream** segments
//! ([`FaultSimulator::run_scalar_stream`]): gate evaluation stays
//! 64-wide, but noise is drawn pattern-major, so `query_block` is
//! bit-for-bit the scalar loop — epochs, key draws, flips, and post-call
//! RNG state all included.

use crate::oracle::Oracle;
use gshe_camo::KeyedNetlist;
use gshe_logic::{sim, ErrorProfile, FaultSimulator, Netlist, PatternBlock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::borrow::Cow;

/// Salt folded into the caller seed for the noise stream (the historical
/// `StochasticOracle` derivation — seeded noise-only stacks reproduce).
pub const NOISE_SEED_SALT: u64 = 0x570C_4A57;

/// Salt folded into the caller seed for the rotation key stream (the
/// historical `RotatingOracle` derivation).
pub const ROTATION_SEED_SALT: u64 = 0xD0_7A7E;

/// The stack's base layer: one bit-parallel evaluation pass over a
/// netlist, exact or fault-injecting. The netlist is swappable in place
/// ([`EvalLayer::install`]) so a rotation layer can re-resolve per epoch
/// while scratch buffers — and, for the noisy base, the noise RNG stream —
/// survive.
#[derive(Debug, Clone)]
pub enum EvalLayer<'a> {
    /// Deterministic evaluation ([`gshe_logic::Simulator`] semantics).
    Exact {
        /// The evaluated netlist (borrowed for static chips, owned once a
        /// rotation layer has installed a resolved epoch netlist).
        netlist: Cow<'a, Netlist>,
        /// Bit-parallel scratch reused across calls.
        scratch: Vec<u64>,
    },
    /// Fault-injecting evaluation: the noise layer fused onto the base
    /// engine (dense per-node rates, one RNG stream).
    Noisy(FaultSimulator<'a>),
}

impl<'a> EvalLayer<'a> {
    /// An exact base over a borrowed netlist.
    pub fn exact(netlist: &'a Netlist) -> Self {
        EvalLayer::Exact {
            netlist: Cow::Borrowed(netlist),
            scratch: Vec::new(),
        }
    }

    /// An exact base over an owned netlist (the rotating case).
    pub fn exact_owned(netlist: Netlist) -> Self {
        EvalLayer::Exact {
            netlist: Cow::Owned(netlist),
            scratch: Vec::new(),
        }
    }

    /// A noisy base over a borrowed netlist. `seed` is consumed verbatim —
    /// stack constructors apply [`NOISE_SEED_SALT`].
    pub fn noisy(netlist: &'a Netlist, profile: ErrorProfile, seed: u64) -> Self {
        EvalLayer::Noisy(FaultSimulator::new(netlist, profile, seed))
    }

    /// A noisy base over an owned netlist (the rotating case).
    pub fn noisy_owned(netlist: Netlist, profile: ErrorProfile, seed: u64) -> Self {
        EvalLayer::Noisy(FaultSimulator::owned(netlist, profile, seed))
    }

    /// Swaps the evaluated netlist (same node count), keeping scratch and
    /// any noise state.
    fn install(&mut self, netlist: Netlist) {
        match self {
            EvalLayer::Exact { netlist: slot, .. } => *slot = Cow::Owned(netlist),
            EvalLayer::Noisy(engine) => engine.install(netlist),
        }
    }

    fn netlist(&self) -> &Netlist {
        match self {
            EvalLayer::Exact { netlist, .. } => netlist,
            EvalLayer::Noisy(engine) => engine.netlist(),
        }
    }

    /// The installed error profile (`None` for the exact base).
    pub fn profile(&self) -> Option<&ErrorProfile> {
        match self {
            EvalLayer::Exact { .. } => None,
            EvalLayer::Noisy(engine) => Some(engine.profile()),
        }
    }

    /// One pattern through lane 0 — the scalar noise stream for the noisy
    /// base (one `gen_bool` per noisy node).
    fn scalar(&mut self, inputs: &[bool]) -> Vec<bool> {
        match self {
            EvalLayer::Exact { netlist, scratch } => {
                sim::run_scalar_with_scratch(netlist, scratch, inputs)
            }
            EvalLayer::Noisy(engine) => engine.run_scalar(inputs),
        }
        .expect("oracle input arity mismatch")
    }

    /// A full block, invalid lanes cleared — the fast path for stacks
    /// without a rotation layer (mask-stream noise for the noisy base).
    fn block_masked(&mut self, block: &PatternBlock) -> Vec<u64> {
        match self {
            EvalLayer::Exact { netlist, scratch } => {
                let mut lanes = sim::run_with_scratch(netlist, scratch, block)
                    .expect("oracle input arity mismatch");
                let mask = block.valid_mask();
                for lane in &mut lanes {
                    *lane &= mask;
                }
                lanes
            }
            EvalLayer::Noisy(engine) => engine
                .run_masked(block)
                .expect("oracle input arity mismatch"),
        }
    }

    /// An epoch segment (`start..start + len`) of `block`, unmasked, into
    /// a caller-owned buffer — the rotation layer's per-epoch pass. The
    /// noisy base draws the scalar noise stream for exactly the segment's
    /// patterns, so segmented block queries stay bit-for-bit the scalar
    /// loop. Writing into the hoisted buffer keeps the steady-state
    /// rotating block path at one allocation per call (the returned lane
    /// vector), regardless of how many epoch segments the block spans.
    fn segment_into(&mut self, block: &PatternBlock, start: usize, len: usize, out: &mut Vec<u64>) {
        match self {
            EvalLayer::Exact { netlist, scratch } => {
                sim::run_with_scratch_into(netlist, scratch, block, out)
            }
            EvalLayer::Noisy(engine) => engine.run_scalar_stream_into(block, start, len, out),
        }
        .expect("oracle input arity mismatch")
    }
}

/// The rotation layer's state: which keyed netlist to re-resolve, how
/// often, and the key stream.
#[derive(Debug, Clone)]
struct Rotation<'a> {
    keyed: &'a KeyedNetlist,
    period: u64,
    rng: StdRng,
}

impl Rotation<'_> {
    fn fresh_resolution(&mut self) -> Netlist {
        let key: Vec<bool> = (0..self.keyed.key_len())
            .map(|_| self.rng.gen_bool(0.5))
            .collect();
        self.keyed.resolve(&key).expect("key width is correct")
    }
}

/// A layered oracle: base evaluation (exact or noisy), with an optional
/// key-rotation layer on top. See the [module docs](self) for the layer
/// table, composition rules, and seed-salt derivation.
#[derive(Debug, Clone)]
pub struct OracleStack<'a> {
    base: EvalLayer<'a>,
    rotation: Option<Rotation<'a>>,
    count: u64,
    /// Per-epoch segment lanes, hoisted so a rotating block query reuses
    /// one buffer across all its segments (and across calls).
    seg_buf: Vec<u64>,
}

impl<'a> OracleStack<'a> {
    /// The bare deterministic chip over the original netlist
    /// (`NetlistOracle` semantics).
    pub fn exact(netlist: &'a Netlist) -> Self {
        OracleStack {
            base: EvalLayer::exact(netlist),
            rotation: None,
            count: 0,
            seg_buf: Vec::new(),
        }
    }

    /// The stochastic chip of Sec. V-B: the defender's keyed netlist with
    /// correct functions installed, flipping per `profile`
    /// (`StochasticOracle` semantics; noise stream `seed ^`
    /// [`NOISE_SEED_SALT`]).
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover the keyed netlist's nodes.
    pub fn noisy(keyed: &'a KeyedNetlist, profile: ErrorProfile, seed: u64) -> Self {
        OracleStack {
            base: EvalLayer::noisy(keyed.netlist(), profile, seed ^ NOISE_SEED_SALT),
            rotation: None,
            count: 0,
            seg_buf: Vec::new(),
        }
    }

    /// The key-rotating chip of Sec. V-C: correct key for the first epoch,
    /// a fresh random key every `period` queries after that
    /// (`RotatingOracle` semantics; key stream `seed ^`
    /// [`ROTATION_SEED_SALT`]).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn rotating(keyed: &'a KeyedNetlist, period: u64, seed: u64) -> Self {
        let (rotation, resolved) = Self::rotation_over(keyed, period, seed);
        OracleStack {
            base: EvalLayer::exact_owned(resolved),
            rotation: Some(rotation),
            count: 0,
            seg_buf: Vec::new(),
        }
    }

    /// The **combined defense**: a rotating chip whose switches also run
    /// in the stochastic regime — rotation layered over the noisy base.
    /// Key stream and noise stream derive from the same `seed` with their
    /// respective salts, so either dimension alone reproduces its legacy
    /// oracle's stream.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or the profile does not cover the keyed
    /// netlist's nodes.
    pub fn rotating_noisy(
        keyed: &'a KeyedNetlist,
        profile: ErrorProfile,
        period: u64,
        seed: u64,
    ) -> Self {
        let (rotation, resolved) = Self::rotation_over(keyed, period, seed);
        OracleStack {
            base: EvalLayer::noisy_owned(resolved, profile, seed ^ NOISE_SEED_SALT),
            rotation: Some(rotation),
            count: 0,
            seg_buf: Vec::new(),
        }
    }

    fn rotation_over(keyed: &'a KeyedNetlist, period: u64, seed: u64) -> (Rotation<'a>, Netlist) {
        assert!(period > 0, "rotation period must be positive");
        let resolved = keyed
            .resolve(&keyed.correct_key())
            .expect("correct key resolves");
        (
            Rotation {
                keyed,
                period,
                rng: StdRng::seed_from_u64(seed ^ ROTATION_SEED_SALT),
            },
            resolved,
        )
    }

    /// The rotation layer's period, if one is stacked.
    pub fn rotation_period(&self) -> Option<u64> {
        self.rotation.as_ref().map(|r| r.period)
    }

    /// The noise layer's error profile, if the base is noisy.
    pub fn profile(&self) -> Option<&ErrorProfile> {
        self.base.profile()
    }

    /// Rotates if the query counter sits on an epoch boundary (the
    /// first epoch uses the correct key, so count 0 never rotates).
    fn maybe_rotate(&mut self) {
        if let Some(rot) = &mut self.rotation {
            if self.count > 0 && self.count.is_multiple_of(rot.period) {
                let resolved = rot.fresh_resolution();
                self.base.install(resolved);
            }
        }
    }
}

impl OracleStack<'_> {
    /// Latency-histogram name for this stack's layer composition, so the
    /// metrics snapshot separates rotating from static query costs.
    fn latency_histogram(&self, block: bool) -> &'static str {
        match (self.rotation.is_some(), block) {
            (false, false) => "oracle.eval.query_ns",
            (false, true) => "oracle.eval.query_block_ns",
            (true, false) => "oracle.rotating.query_ns",
            (true, true) => "oracle.rotating.query_block_ns",
        }
    }
}

impl Oracle for OracleStack<'_> {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        let timed = gshe_obs::enabled().then(std::time::Instant::now);
        self.maybe_rotate();
        self.count += 1;
        let out = self.base.scalar(inputs);
        if let Some(t0) = timed {
            gshe_obs::record(
                self.latency_histogram(false),
                t0.elapsed().as_nanos() as u64,
            );
        }
        out
    }

    /// Bit-parallel block path. Without a rotation layer this is one pass
    /// of the base engine. With rotation, the block is split at epoch
    /// boundaries and each segment answered by one pass over the epoch's
    /// resolved netlist, drawing the scalar noise stream — key draws,
    /// flips, query accounting, and answers match the scalar loop exactly;
    /// only the gate evaluation is batched.
    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        let timed = gshe_obs::enabled().then(std::time::Instant::now);
        if self.rotation.is_none() {
            self.count += block.count as u64;
            let out = self.base.block_masked(block);
            if let Some(t0) = timed {
                gshe_obs::record(self.latency_histogram(true), t0.elapsed().as_nanos() as u64);
            }
            return out;
        }
        let mut lanes = vec![0u64; self.num_outputs()];
        let mut k = 0usize;
        while k < block.count {
            self.maybe_rotate();
            let period = self.rotation.as_ref().expect("rotation checked").period;
            let until_rotation = (period - self.count % period).min(64) as usize;
            let take = until_rotation.min(block.count - k);
            let segment = if take == 64 {
                !0u64
            } else {
                ((1u64 << take) - 1) << k
            };
            self.base.segment_into(block, k, take, &mut self.seg_buf);
            for (lane, out) in lanes.iter_mut().zip(&self.seg_buf) {
                *lane |= out & segment;
            }
            self.count += take as u64;
            k += take;
        }
        if let Some(t0) = timed {
            gshe_obs::record(self.latency_histogram(true), t0.elapsed().as_nanos() as u64);
        }
        lanes
    }

    fn num_inputs(&self) -> usize {
        self.base.netlist().inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.base.netlist().outputs().len()
    }

    fn queries(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use gshe_logic::NodeId;

    fn c17_keyed() -> (Netlist, KeyedNetlist) {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        (nl, keyed)
    }

    fn cloaked_profile(keyed: &KeyedNetlist, rate: f64) -> ErrorProfile {
        let nodes: Vec<NodeId> = keyed.camo_gates().iter().map(|g| g.node).collect();
        ErrorProfile::uniform_at(keyed.netlist().len(), &nodes, rate)
    }

    #[test]
    fn combined_stack_blocks_match_scalar_queries_bit_for_bit() {
        // The headline contract: rotation × noise composed, `query_block`
        // vs 64 scalar queries, across epoch boundaries (period 1 rotates
        // before every query after the first; 7 ∤ 64 drifts the boundary
        // through consecutive blocks; 20 puts three boundaries inside one
        // block) at a nonzero error rate.
        let (_, keyed) = c17_keyed();
        for period in [1u64, 7, 20] {
            let profile = cloaked_profile(&keyed, 0.3);
            let mut fast = OracleStack::rotating_noisy(&keyed, profile.clone(), period, 5);
            let mut slow = OracleStack::rotating_noisy(&keyed, profile, period, 5);
            let mut rng = StdRng::seed_from_u64(4);
            for round in 0..3 {
                let block = PatternBlock::random(5, &mut rng);
                let lanes = fast.query_block(&block);
                for k in 0..block.count {
                    let y = slow.query(&block.pattern(k));
                    for (o, &bit) in y.iter().enumerate() {
                        assert_eq!(
                            bit,
                            (lanes[o] >> k) & 1 == 1,
                            "period {period} round {round} pattern {k} output {o}"
                        );
                    }
                }
                assert_eq!(fast.queries(), slow.queries(), "period {period}");
            }
        }
    }

    #[test]
    fn combined_stack_leaves_count_and_both_rng_streams_in_sync() {
        // After a (partial) block, the stack must sit in exactly the state
        // the scalar loop leaves: query count, rotation key stream, AND
        // noise RNG position. Follow-up scalar queries spanning several
        // further rotations must therefore agree between the twins.
        let (_, keyed) = c17_keyed();
        for period in [1u64, 7, 20] {
            let profile = cloaked_profile(&keyed, 0.25);
            let mut fast = OracleStack::rotating_noisy(&keyed, profile.clone(), period, 9);
            let mut slow = OracleStack::rotating_noisy(&keyed, profile, period, 9);
            let mut rng = StdRng::seed_from_u64(6);
            let block = PatternBlock::random_n(5, 50, &mut rng);
            let _ = fast.query_block(&block);
            for k in 0..block.count {
                let _ = slow.query(&block.pattern(k));
            }
            assert_eq!(fast.queries(), slow.queries(), "period {period}");
            for q in 0..(3 * period + 2) {
                let p = block.pattern(q as usize % block.count);
                assert_eq!(
                    fast.query(&p),
                    slow.query(&p),
                    "period {period} post-block query {q} diverged"
                );
            }
        }
    }

    #[test]
    fn combined_stack_actually_rotates_and_flips() {
        // Sanity that both layers are live: at a 50% rate over six cloaked
        // cells plus period-4 rotation, blocks must disagree with the
        // clean chip on many lanes.
        let (nl, keyed) = c17_keyed();
        let profile = cloaked_profile(&keyed, 0.5);
        let mut combined = OracleStack::rotating_noisy(&keyed, profile, 4, 11);
        assert_eq!(combined.rotation_period(), Some(4));
        assert!(combined.profile().is_some());
        let mut clean = OracleStack::exact(&nl);
        let mut rng = StdRng::seed_from_u64(2);
        let mut flipped = 0u32;
        for _ in 0..8 {
            let block = PatternBlock::random(5, &mut rng);
            let a = combined.query_block(&block);
            let b = clean.query_block(&block);
            flipped += a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x ^ y).count_ones())
                .sum::<u32>();
        }
        assert!(flipped > 100, "only {flipped} lane flips");
    }

    #[test]
    fn rotation_key_stream_is_independent_of_the_noise_layer() {
        // Stacking noise must not steal rotation key draws: an exact
        // rotating stack and a rate-0 noisy rotating stack resolve the
        // same key sequence, hence answer identically.
        let (_, keyed) = c17_keyed();
        let quiet = ErrorProfile::zero(keyed.netlist().len());
        let mut exact = OracleStack::rotating(&keyed, 3, 17);
        let mut noisy = OracleStack::rotating_noisy(&keyed, quiet, 3, 17);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2 {
            let block = PatternBlock::random(5, &mut rng);
            assert_eq!(exact.query_block(&block), noisy.query_block(&block));
        }
        for p in 0..10u32 {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            assert_eq!(exact.query(&v), noisy.query(&v));
        }
    }

    #[test]
    fn noise_only_stack_reproduces_the_legacy_stochastic_stream() {
        // The stack constructor applies the historical seed salt, so a
        // noise-only stack and the legacy adapter are the same oracle.
        let (_, keyed) = c17_keyed();
        let mut stack = OracleStack::noisy(&keyed, cloaked_profile(&keyed, 0.3), 42);
        let mut legacy = crate::StochasticOracle::new(&keyed, 0.3, 42);
        let inputs = [true, false, true, true, false];
        for _ in 0..10 {
            assert_eq!(stack.query(&inputs), legacy.query(&inputs));
        }
        let block = PatternBlock::from_patterns(&[vec![false; 5], vec![true; 5]]);
        assert_eq!(stack.query_block(&block), legacy.query_block(&block));
    }

    #[test]
    fn rotation_only_stack_reproduces_the_legacy_rotating_stream() {
        let (_, keyed) = c17_keyed();
        let mut stack = OracleStack::rotating(&keyed, 7, 9);
        let mut legacy = crate::RotatingOracle::new(&keyed, 7, 9);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2 {
            let block = PatternBlock::random(5, &mut rng);
            assert_eq!(stack.query_block(&block), legacy.query_block(&block));
        }
        for p in 0..23u32 {
            let v: Vec<bool> = (0..5).map(|k| (p >> k) & 1 == 1).collect();
            assert_eq!(stack.query(&v), legacy.query(&v));
        }
        assert_eq!(stack.queries(), legacy.queries());
    }

    #[test]
    #[should_panic(expected = "rotation period")]
    fn zero_period_is_rejected() {
        let (_, keyed) = c17_keyed();
        let profile = ErrorProfile::zero(keyed.netlist().len());
        let _ = OracleStack::rotating_noisy(&keyed, profile, 0, 1);
    }
}
