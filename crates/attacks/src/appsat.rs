//! An AppSAT-style approximate attack (Shamsi et al. \[11\]).
//!
//! AppSAT interleaves the exact DIP loop with random-query sampling: every
//! `reinforce_every` DIPs it estimates the error of the current best key on
//! random patterns. If the estimate falls below `error_threshold` the
//! attack exits early with a *probably-approximately-correct* key;
//! mismatching random queries are added as I/O constraints, reinforcing the
//! solver the same way DIPs do.
//!
//! The paper (Sec. V-B, fn. 6) singles out AppSAT as the most promising
//! contender against stochastic computation, but notes it "requires a
//! consistent solution space regarding the input-output queries —
//! probabilistic computation violates this assumption." The
//! `stochastic_oracle_*` tests exercise exactly that failure mode.

use crate::encode::{
    assert_outputs_equal, assert_valid_key_codes, encode_keyed, encode_keyed_fixed,
};
use crate::oracle::Oracle;
use crate::sat_attack::{solve_sliced, AttackConfig, AttackOutcome, AttackStatus};
use gshe_camo::KeyedNetlist;
use gshe_logic::{PatternBlock, Simulator};
use gshe_sat::solver::Budget;
use gshe_sat::{CircuitEncoder, Lit, SolveResult, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// AppSAT-specific knobs on top of [`AttackConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSatConfig {
    /// Base attack configuration.
    pub base: AttackConfig,
    /// Run a random-query reinforcement round every this many DIPs.
    pub reinforce_every: u64,
    /// Random patterns per reinforcement round.
    pub samples_per_round: usize,
    /// Exit early once the sampled error rate of the candidate key drops
    /// to or below this threshold.
    pub error_threshold: f64,
    /// RNG seed for the random queries.
    pub seed: u64,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        AppSatConfig {
            base: AttackConfig::default(),
            reinforce_every: 4,
            samples_per_round: 48,
            error_threshold: 0.0,
            seed: 0xA115A7,
        }
    }
}

/// Runs the AppSAT-style attack. With `error_threshold = 0` and a
/// deterministic oracle it behaves like the exact SAT attack (plus
/// reinforcement queries); with a positive threshold it may return an
/// approximate key early.
pub fn appsat_attack(
    keyed: &KeyedNetlist,
    oracle: &mut dyn Oracle,
    config: &AppSatConfig,
) -> AttackOutcome {
    let start = Instant::now();
    let deadline = start + config.base.timeout;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut solver = Solver::new();
    solver.set_budget(Budget {
        max_conflicts: None,
        max_vars: config.base.max_vars,
    });

    let key1: Vec<Lit> = (0..keyed.key_len())
        .map(|_| Lit::pos(solver.new_var()))
        .collect();
    let key2: Vec<Lit> = (0..keyed.key_len())
        .map(|_| Lit::pos(solver.new_var()))
        .collect();
    let (diff_lit, input_lits) = {
        let mut enc = CircuitEncoder::new(&mut solver);
        assert_valid_key_codes(&mut enc, keyed, &key1);
        assert_valid_key_codes(&mut enc, keyed, &key2);
        let c1 = encode_keyed(&mut enc, keyed, &key1);
        let c2 = encode_keyed(&mut enc, keyed, &key2);
        for (a, b) in c1.inputs.iter().zip(&c2.inputs) {
            enc.equal(*a, *b);
        }
        (enc.miter(&c1.outputs, &c2.outputs), c1.inputs)
    };

    let mut iterations = 0u64;
    let queries_before = oracle.queries();
    let n_inputs = input_lits.len();

    let finish = |status: AttackStatus,
                  key: Option<Vec<bool>>,
                  iterations: u64,
                  solver: &Solver,
                  oracle: &dyn Oracle| AttackOutcome {
        status,
        key,
        iterations,
        queries: oracle.queries() - queries_before,
        elapsed: start.elapsed(),
        solver_stats: solver.stats(),
    };

    loop {
        if Instant::now() >= deadline {
            return finish(AttackStatus::Timeout, None, iterations, &solver, oracle);
        }
        if let Some(max) = config.base.max_iterations {
            if iterations >= max {
                return finish(AttackStatus::Timeout, None, iterations, &solver, oracle);
            }
        }
        match solve_sliced(
            &mut solver,
            &[diff_lit],
            deadline,
            config.base.conflicts_per_slice,
        ) {
            None => return finish(AttackStatus::Timeout, None, iterations, &solver, oracle),
            Some(SolveResult::Sat) => {
                iterations += 1;
                let dip: Vec<bool> = input_lits.iter().map(|&l| solver.model_lit(l)).collect();
                let y = oracle.query(&dip);
                {
                    let mut enc = CircuitEncoder::new(&mut solver);
                    for key in [&key1, &key2] {
                        let outs = encode_keyed_fixed(&mut enc, keyed, key, &dip);
                        assert_outputs_equal(&mut enc, &outs, &y);
                    }
                }

                // Reinforcement round.
                if iterations.is_multiple_of(config.reinforce_every) {
                    // Candidate key: any key consistent so far.
                    let candidate = match solve_sliced(
                        &mut solver,
                        &[],
                        deadline,
                        config.base.conflicts_per_slice,
                    ) {
                        Some(SolveResult::Sat) => {
                            let k: Vec<bool> = key1.iter().map(|&l| solver.model_lit(l)).collect();
                            Some(k)
                        }
                        Some(SolveResult::Unsat) => {
                            return finish(
                                AttackStatus::Inconsistent,
                                None,
                                iterations,
                                &solver,
                                oracle,
                            )
                        }
                        _ => None,
                    };
                    if let Some(cand) = candidate {
                        let resolved = keyed
                            .resolve(&cand)
                            .expect("candidate key has correct width");
                        // Block-query reinforcement: the sample patterns
                        // are drawn exactly as the scalar loop drew them
                        // (sample-major, bit-minor), then answered 64 at a
                        // time — the chip through `query_block` (the
                        // bit-parallel engine for block-capable oracles,
                        // still one query per pattern), the candidate
                        // through the bit-parallel simulator.
                        let mut cand_sim = Simulator::new(&resolved);
                        let mut mismatches = 0usize;
                        let mut mismatching: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
                        let mut remaining = config.samples_per_round;
                        while remaining > 0 {
                            let take = remaining.min(64);
                            remaining -= take;
                            let patterns: Vec<Vec<bool>> = (0..take)
                                .map(|_| (0..n_inputs).map(|_| rng.gen_bool(0.5)).collect())
                                .collect();
                            let block = PatternBlock::from_patterns(&patterns);
                            let y_chip = oracle.query_block(&block);
                            let y_cand = cand_sim.run_masked(&block).expect("interface matches");
                            let mut diff = 0u64;
                            for (chip, cand_lane) in y_chip.iter().zip(&y_cand) {
                                diff |= chip ^ cand_lane;
                            }
                            diff &= block.valid_mask();
                            mismatches += diff.count_ones() as usize;
                            while diff != 0 {
                                let k = diff.trailing_zeros() as usize;
                                diff &= diff - 1;
                                let y_k: Vec<bool> =
                                    y_chip.iter().map(|lane| (lane >> k) & 1 == 1).collect();
                                mismatching.push((block.pattern(k), y_k));
                            }
                        }
                        let err = mismatches as f64 / config.samples_per_round as f64;
                        if err <= config.error_threshold {
                            return finish(
                                AttackStatus::Success,
                                Some(cand),
                                iterations,
                                &solver,
                                oracle,
                            );
                        }
                        // Reinforce with the mismatching observations.
                        let mut enc = CircuitEncoder::new(&mut solver);
                        for (x, y_chip) in mismatching {
                            for key in [&key1, &key2] {
                                let outs = encode_keyed_fixed(&mut enc, keyed, key, &x);
                                assert_outputs_equal(&mut enc, &outs, &y_chip);
                            }
                        }
                    }
                }
            }
            Some(SolveResult::Unsat) => {
                return match solve_sliced(
                    &mut solver,
                    &[],
                    deadline,
                    config.base.conflicts_per_slice,
                ) {
                    None => finish(AttackStatus::Timeout, None, iterations, &solver, oracle),
                    Some(SolveResult::Sat) => {
                        let key: Vec<bool> = key1.iter().map(|&l| solver.model_lit(l)).collect();
                        finish(
                            AttackStatus::Success,
                            Some(key),
                            iterations,
                            &solver,
                            oracle,
                        )
                    }
                    Some(SolveResult::Unsat) => finish(
                        AttackStatus::Inconsistent,
                        None,
                        iterations,
                        &solver,
                        oracle,
                    ),
                    Some(SolveResult::Unknown) => finish(
                        AttackStatus::ResourceExhausted,
                        None,
                        iterations,
                        &solver,
                        oracle,
                    ),
                };
            }
            Some(SolveResult::Unknown) => {
                return finish(
                    AttackStatus::ResourceExhausted,
                    None,
                    iterations,
                    &solver,
                    oracle,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::verify_key;
    use crate::oracle::{NetlistOracle, StochasticOracle};
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::{GeneratorConfig, NetlistGenerator};
    use rand::rngs::StdRng as TestRng;

    #[test]
    fn appsat_recovers_exact_key_with_deterministic_oracle() {
        // Instance seed picked to converge well inside the wall-clock
        // budget under the vendored StdRng stream.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 9, 5, 100).with_seed(42))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.3, 19);
        let mut rng = TestRng::seed_from_u64(19);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut oracle = NetlistOracle::new(&nl);
        let out = appsat_attack(&keyed, &mut oracle, &AppSatConfig::default());
        assert_eq!(out.status, AttackStatus::Success);
        let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
        assert!(v.functionally_equivalent);
    }

    #[test]
    fn appsat_early_exit_with_loose_threshold() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 9, 5, 100).with_seed(43))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.4, 23);
        let mut rng = TestRng::seed_from_u64(23);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut oracle = NetlistOracle::new(&nl);
        let config = AppSatConfig {
            error_threshold: 1.0, // accept anything at the first round
            reinforce_every: 1,
            ..Default::default()
        };
        let out = appsat_attack(&keyed, &mut oracle, &config);
        assert_eq!(out.status, AttackStatus::Success);
        // Early exit: bounded iterations.
        assert!(out.iterations <= 1, "{} iterations", out.iterations);
    }

    #[test]
    fn stochastic_oracle_breaks_appsat_consistency() {
        // fn. 6: probabilistic computation violates AppSAT's consistency
        // assumption. With a noisy oracle, repeated queries on similar
        // patterns contradict each other and the constraint set collapses
        // (Inconsistent), or the returned key is functionally wrong.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 60).with_seed(47))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.5, 29);
        let mut rng = TestRng::seed_from_u64(29);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut broken = 0;
        let trials = 4;
        for seed in 0..trials {
            let mut oracle = StochasticOracle::new(&keyed, 0.25, seed);
            let config = AppSatConfig {
                base: AttackConfig::with_timeout_secs(20),
                reinforce_every: 2,
                samples_per_round: 32,
                error_threshold: 0.0,
                seed,
            };
            let out = appsat_attack(&keyed, &mut oracle, &config);
            let failed = match out.status {
                AttackStatus::Inconsistent => true,
                AttackStatus::Success => {
                    let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
                    !v.functionally_equivalent
                }
                _ => true,
            };
            broken += failed as usize;
        }
        assert!(
            broken >= trials as usize - 1,
            "AppSAT survived noise too often"
        );
    }
}
