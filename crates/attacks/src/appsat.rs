//! An AppSAT-style approximate attack (Shamsi et al. \[11\]).
//!
//! AppSAT interleaves the exact DIP loop with random-query sampling: every
//! `reinforce_every` DIPs it estimates the error of the current best key on
//! random patterns. If the estimate falls below `error_threshold` the
//! attack exits early with a *probably-approximately-correct* key;
//! mismatching random queries are added as I/O constraints, reinforcing the
//! solver the same way DIPs do.
//!
//! The paper (Sec. V-B, fn. 6) singles out AppSAT as the most promising
//! contender against stochastic computation, but notes it "requires a
//! consistent solution space regarding the input-output queries —
//! probabilistic computation violates this assumption." The
//! `stochastic_oracle_*` tests exercise exactly that failure mode.

use crate::dip_engine::{refine, RefinePolicy};
use crate::oracle::Oracle;
use crate::sat_attack::{AttackConfig, AttackOutcome};
use gshe_camo::KeyedNetlist;

/// AppSAT-specific knobs on top of [`AttackConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSatConfig {
    /// Base attack configuration.
    pub base: AttackConfig,
    /// Run a random-query reinforcement round every this many DIPs.
    pub reinforce_every: u64,
    /// Random patterns per reinforcement round.
    pub samples_per_round: usize,
    /// Exit early once the sampled error rate of the candidate key drops
    /// to or below this threshold.
    pub error_threshold: f64,
    /// RNG seed for the random queries.
    pub seed: u64,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        AppSatConfig {
            base: AttackConfig::default(),
            reinforce_every: 4,
            samples_per_round: 48,
            error_threshold: 0.0,
            seed: 0xA115A7,
        }
    }
}

/// Runs the AppSAT-style attack. With `error_threshold = 0` and a
/// deterministic oracle it behaves like the exact SAT attack (plus
/// reinforcement queries); with a positive threshold it may return an
/// approximate key early.
///
/// This is the [`RefinePolicy::AppSat`] specialization of the shared
/// [DIP-refinement engine](crate::dip_engine): the single-miter loop with
/// a random-query reinforcement round every `reinforce_every` DIPs.
pub fn appsat_attack(
    keyed: &KeyedNetlist,
    oracle: &mut dyn Oracle,
    config: &AppSatConfig,
) -> AttackOutcome {
    refine(
        keyed,
        oracle,
        &config.base,
        &RefinePolicy::AppSat {
            reinforce_every: config.reinforce_every,
            samples_per_round: config.samples_per_round,
            error_threshold: config.error_threshold,
            seed: config.seed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::verify_key;
    use crate::oracle::{NetlistOracle, StochasticOracle};
    use crate::sat_attack::{AttackConfig, AttackStatus};
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::{GeneratorConfig, NetlistGenerator};
    use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    #[test]
    fn appsat_recovers_exact_key_with_deterministic_oracle() {
        // Instance seed picked to converge well inside the wall-clock
        // budget under the vendored StdRng stream.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 9, 5, 100).with_seed(42))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.3, 19);
        let mut rng = TestRng::seed_from_u64(19);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut oracle = NetlistOracle::new(&nl);
        let out = appsat_attack(&keyed, &mut oracle, &AppSatConfig::default());
        assert_eq!(out.status, AttackStatus::Success);
        let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
        assert!(v.functionally_equivalent);
    }

    #[test]
    fn appsat_early_exit_with_loose_threshold() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 9, 5, 100).with_seed(43))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.4, 23);
        let mut rng = TestRng::seed_from_u64(23);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut oracle = NetlistOracle::new(&nl);
        let config = AppSatConfig {
            error_threshold: 1.0, // accept anything at the first round
            reinforce_every: 1,
            ..Default::default()
        };
        let out = appsat_attack(&keyed, &mut oracle, &config);
        assert_eq!(out.status, AttackStatus::Success);
        // Early exit: bounded iterations.
        assert!(out.iterations <= 1, "{} iterations", out.iterations);
    }

    #[test]
    fn stochastic_oracle_breaks_appsat_consistency() {
        // fn. 6: probabilistic computation violates AppSAT's consistency
        // assumption. With a noisy oracle, repeated queries on similar
        // patterns contradict each other and the constraint set collapses
        // (Inconsistent), or the returned key is functionally wrong.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 60).with_seed(47))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.5, 29);
        let mut rng = TestRng::seed_from_u64(29);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let mut broken = 0;
        let trials = 4;
        for seed in 0..trials {
            let mut oracle = StochasticOracle::new(&keyed, 0.25, seed);
            let config = AppSatConfig {
                base: AttackConfig::with_timeout_secs(20),
                reinforce_every: 2,
                samples_per_round: 32,
                error_threshold: 0.0,
                seed,
            };
            let out = appsat_attack(&keyed, &mut oracle, &config);
            let failed = match out.status {
                AttackStatus::Inconsistent => true,
                AttackStatus::Success => {
                    let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
                    !v.functionally_equivalent
                }
                _ => true,
            };
            broken += failed as usize;
        }
        assert!(
            broken >= trials as usize - 1,
            "AppSAT survived noise too often"
        );
    }
}
