//! The unified **DIP-refinement engine** behind all three oracle-guided
//! attacks.
//!
//! [`sat_attack`](crate::sat_attack::sat_attack),
//! [`double_dip_attack`](crate::double_dip::double_dip_attack), and
//! [`appsat_attack`](crate::appsat::appsat_attack) are one algorithm with
//! three policies: encode key-copy miters, repeatedly solve for a
//! discriminating input pattern (DIP), resolve it through the oracle, and
//! constrain every key copy to reproduce the observation until the miter
//! goes UNSAT. This module hosts that loop exactly once; the policy decides
//! the miter shape (two copies vs. Double DIP's four-copy double miter with
//! a single-DIP mop-up phase) and the per-round extras (AppSAT's random
//! reinforcement and approximate early exit).
//!
//! ## Batched DIP discovery
//!
//! The loop discovers up to [`AttackConfig::dip_batch`] DIPs per solver
//! round. After each model, every key copy's outputs on the discovered
//! input are encoded once ([`encode_keyed_fixed`]) and the copies are
//! asserted to **agree** on them ([`assert_outputs_agree`]) — without
//! pinning to the (still unknown) oracle value. That *class-split
//! blocking* forces the re-solved miter — an incremental continuation,
//! not a fresh solve — onto a key-class split no batched DIP already
//! witnesses, so a batch cannot fill up with redundant patterns that
//! split the same classes. The whole batch is then answered by **one**
//! [`Oracle::query_block`] call (64 patterns per pass of the bit-parallel
//! engine) instead of one scalar query per iteration, and the stored
//! output signals are pinned to the observations. Agreement constraints
//! are sound to keep permanently: once a DIP's observation pins every
//! copy to the same constants, the agreement is implied.
//!
//! At `dip_batch = 1` (the default) the engine performs the *identical*
//! operation sequence as the historical per-attack loops — same variable
//! allocation, solve, scalar `Oracle::query`, and constraint order — so
//! seeded outcomes (status, extracted key, query counts) are preserved
//! bit-for-bit. Larger widths trade mildly weaker per-DIP pruning (a
//! batch is discovered before its own observations constrain the miter)
//! for the block-oracle and warm-resolve throughput win;
//! [`DEFAULT_BATCH_WIDTH`] is the recommended setting for
//! throughput-oriented runs.

use crate::coi::{CoiMode, CoiOracle, CoiProjection};
use crate::encode::{
    assert_outputs_agree, assert_outputs_equal, assert_valid_key_codes, encode_keyed,
    encode_keyed_fixed, SigVal,
};
use crate::oracle::Oracle;
use crate::sat_attack::{AttackConfig, AttackOutcome, AttackStatus};
use gshe_camo::KeyedNetlist;
use gshe_logic::{PatternBlock, Simulator};
use gshe_sat::solver::Budget;
use gshe_sat::{CircuitEncoder, Lit, Polarity, SearchConfig, SolveResult, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Recommended [`AttackConfig::dip_batch`] for throughput-oriented runs:
/// deep enough to amortize the oracle's bit-parallel pass, shallow enough
/// that intra-batch pruning loss stays small.
pub const DEFAULT_BATCH_WIDTH: usize = 16;

/// How the shared refinement loop specializes into a concrete attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefinePolicy {
    /// The plain SAT attack (Subramanyan et al.): one miter over two key
    /// copies, every DIP rules out at least one wrong key class.
    Single,
    /// Double DIP (Shen & Zhou): a double miter over four key copies with
    /// pairwise key distinctness rules out at least two wrong keys per
    /// query, then a single-DIP mop-up phase finishes the key classes the
    /// double miter can no longer distinguish.
    DoubleDip,
    /// AppSAT (Shamsi et al.): the single-DIP loop interleaved with
    /// random-query error estimation, early-exiting with a
    /// probably-approximately-correct key.
    AppSat {
        /// Run a reinforcement round every this many DIPs (0 = never).
        reinforce_every: u64,
        /// Random patterns per reinforcement round.
        samples_per_round: usize,
        /// Exit early once the sampled error of the candidate key drops to
        /// or below this threshold.
        error_threshold: f64,
        /// RNG seed for the random reinforcement queries.
        seed: u64,
    },
}

/// Solves with the wall clock checked between conflict-budget slices.
/// Returns `None` on deadline/budget exhaustion.
pub(crate) fn solve_sliced(
    solver: &mut Solver,
    assumptions: &[Lit],
    deadline: Instant,
    slice: u64,
) -> Option<SolveResult> {
    let _span = gshe_obs::span("attack.solve");
    let before = solver.stats();
    loop {
        solver.set_budget(Budget {
            max_conflicts: Some(slice),
            max_vars: None,
        });
        match solver.solve_with(assumptions) {
            SolveResult::Unknown => {
                if Instant::now() >= deadline {
                    return None;
                }
            }
            done => {
                // Per-solve effort distributions (log2-bucket histograms)
                // for the sb_drill diagnostics harness; pure reads, so
                // enabling instrumentation cannot perturb the search.
                if gshe_obs::enabled() {
                    let after = solver.stats();
                    gshe_obs::record("sat.solve.conflicts", after.conflicts - before.conflicts);
                    gshe_obs::record("sat.solve.decisions", after.decisions - before.decisions);
                    gshe_obs::record(
                        "sat.solve.propagations",
                        after.propagations - before.propagations,
                    );
                }
                return Some(done);
            }
        }
    }
}

/// Installs one batch entry's class-split blocker: encodes every key
/// copy's outputs on the fixed input `dip` (once — the returned signals
/// are pinned to the oracle's answer after the batch resolves) and
/// asserts the copies agree on them, chained pairwise. Under the miter
/// this makes the discovered input pattern (and every pattern splitting
/// only already-witnessed key classes) unsatisfiable, so no separate
/// input-blocking clause is needed. See the module docs.
fn encode_agreement(
    solver: &mut Solver,
    keyed: &KeyedNetlist,
    keys: &[Vec<Lit>],
    dip: &[bool],
) -> Vec<Vec<SigVal>> {
    let mut enc = CircuitEncoder::new(solver);
    let per_key: Vec<Vec<SigVal>> = keys
        .iter()
        .map(|key| encode_keyed_fixed(&mut enc, keyed, key, dip))
        .collect();
    for pair in per_key.windows(2) {
        assert_outputs_agree(&mut enc, &pair[0], &pair[1]);
    }
    per_key
}

/// Mutable AppSAT bookkeeping across rounds.
struct AppSatState {
    rng: StdRng,
    reinforce_every: u64,
    samples_per_round: usize,
    error_threshold: f64,
    /// Reinforcement rounds already run (`iterations / reinforce_every`
    /// high-water mark, so batches that cross several multiples at once
    /// still run exactly one round).
    rounds: u64,
}

/// A terminal decision reached inside the loop: status plus extracted key.
type Terminal = (AttackStatus, Option<Vec<bool>>);

/// Runs the DIP-refinement loop for `policy` against `keyed`, resolving
/// discriminating inputs through `oracle`, under `config`'s budgets and
/// batch width. This is the single implementation all three public attack
/// entry points delegate to.
pub fn refine(
    keyed: &KeyedNetlist,
    oracle: &mut dyn Oracle,
    config: &AttackConfig,
    policy: &RefinePolicy,
) -> AttackOutcome {
    // Cone-of-influence reduction: when the cloaked cells reach only a
    // strict subset of the outputs (and the config opts in), run the
    // identical loop on the compact cone instance against a projected
    // oracle, then expand the recovered cone key to the full design.
    if let Some(proj) = CoiProjection::build(keyed, config.coi) {
        gshe_obs::count("attack.coi_reductions", 1);
        gshe_obs::record("attack.coi_cone_nodes", proj.cone_len() as u64);
        let cleanup = proj.opt_report();
        gshe_obs::count("attack.coi_folded", cleanup.folded_constants as u64);
        gshe_obs::count("attack.coi_collapsed", cleanup.collapsed as u64);
        gshe_obs::count("attack.coi_swept", cleanup.swept_dead as u64);
        let mut cone_oracle = CoiOracle::new(oracle, &proj);
        let inner = AttackConfig {
            coi: CoiMode::Off,
            ..*config
        };
        let mut out = refine(proj.keyed(), &mut cone_oracle, &inner, policy);
        if let Some(cone_key) = out.key.take() {
            out.key = Some(proj.expand_key(&cone_key));
        }
        return out;
    }
    let start = Instant::now();
    let deadline = start + config.timeout;
    let mut appsat = match *policy {
        RefinePolicy::AppSat {
            reinforce_every,
            samples_per_round,
            error_threshold,
            seed,
        } => Some(AppSatState {
            rng: StdRng::seed_from_u64(seed),
            reinforce_every,
            samples_per_round,
            error_threshold,
            rounds: 0,
        }),
        _ => None,
    };
    let mut solver = Solver::new();
    solver.set_budget(Budget {
        max_conflicts: None,
        max_vars: config.max_vars,
    });
    solver.set_search_config(SearchConfig {
        restart: config.restart_mode,
        ..SearchConfig::default()
    });
    solver.set_simplify(config.simplify);

    // Key copies first (their variable indices anchor the search), then the
    // circuit copies sharing one set of primary inputs, then the miter(s).
    let n_copies = if *policy == RefinePolicy::DoubleDip {
        4
    } else {
        2
    };
    let keys: Vec<Vec<Lit>> = (0..n_copies)
        .map(|_| {
            (0..keyed.key_len())
                .map(|_| Lit::pos(solver.new_var()))
                .collect()
        })
        .collect();
    let copies: Vec<_> = {
        let mut enc = CircuitEncoder::new(&mut solver);
        for k in &keys {
            assert_valid_key_codes(&mut enc, keyed, k);
        }
        let copies: Vec<_> = keys
            .iter()
            .map(|k| encode_keyed(&mut enc, keyed, k))
            .collect();
        for c in &copies[1..] {
            for (a, b) in copies[0].inputs.iter().zip(&c.inputs) {
                enc.equal(*a, *b);
            }
        }
        copies
    };
    // The miter structure is encoded Plaisted–Greenbaum single-sided when
    // the simplify knob engages on the copy-encoding clause count: the
    // difference literals are only ever *assumed true*, never fixed false
    // or read from a model, so the `d → outputs differ` direction alone is
    // sound. Gated on the same threshold as preprocessing so small seeded
    // traces (goldens) keep the historical two-sided clause set
    // bit-for-bit. The circuit copies themselves stay two-sided: their
    // output literals are later pinned to oracle observations in either
    // polarity.
    let pol = if config.simplify.engages(solver.num_problem_clauses()) {
        Polarity::Pos
    } else {
        Polarity::Both
    };
    let (phases, input_lits) = {
        let mut enc = CircuitEncoder::new(&mut solver);
        let d01 = enc.miter_pol(&copies[0].outputs, &copies[1].outputs, pol);
        let phases: Vec<Vec<Lit>> = if n_copies == 4 {
            let d23 = enc.miter_pol(&copies[2].outputs, &copies[3].outputs, pol);
            // Pairwise key distinctness across the pairs: K1≠K3, K1≠K4,
            // K2≠K3, K2≠K4 — guarantees ≥ 2 distinct wrong keys eliminated
            // per double DIP. Gated on an activation literal so the
            // single-DIP mop-up and the final extraction are not
            // over-constrained. Under `act`, only the `ne → some diff` and
            // `diff → keys differ` directions are needed, so the xor/or
            // definitions inherit the single-sided polarity.
            let act = enc.fresh();
            if keyed.key_len() > 0 {
                for (i, j) in [(0usize, 2usize), (0, 3), (1, 2), (1, 3)] {
                    let diffs: Vec<Lit> = keys[i]
                        .iter()
                        .zip(&keys[j])
                        .map(|(&a, &b)| enc.gate_tt_pol(0b0110, a, b, pol))
                        .collect();
                    let ne = enc.or_many_pol(&diffs, pol);
                    enc.clause(&[!act, ne]);
                }
            }
            let both = match pol {
                // Historical emission (4 truth-table row clauses).
                Polarity::Both => enc.and(d01, d23),
                _ => enc.and_many_pol(&[d01, d23], pol),
            };
            vec![vec![both, act], vec![d01]]
        } else {
            vec![vec![d01]]
        };
        (phases, copies[0].inputs.clone())
    };
    // Freezing contract (see `Solver::freeze`): preprocessing may run on
    // the first solve, so every literal this loop later reads from a model
    // (key bits, primary inputs) or reuses across solves (the phase
    // assumption literals) must be protected from variable elimination.
    // Variables created after preprocessing (fixed-copy encodings,
    // agreement blockers, AppSAT reinforcement) are automatically safe.
    for k in &keys {
        for &l in k {
            solver.freeze(l.var());
        }
    }
    for &l in &input_lits {
        solver.freeze(l.var());
    }
    for phase in &phases {
        for &l in phase {
            solver.freeze(l.var());
        }
    }

    let mut iterations = 0u64;
    let queries_before = oracle.queries();
    let width = config.dip_batch.clamp(1, 64);

    let finish = |status: AttackStatus,
                  key: Option<Vec<bool>>,
                  iterations: u64,
                  solver: &Solver,
                  oracle: &dyn Oracle| {
        let stats = solver.stats();
        gshe_obs::count("sat.decisions", stats.decisions);
        gshe_obs::count("sat.propagations", stats.propagations);
        gshe_obs::count("sat.conflicts", stats.conflicts);
        gshe_obs::count("sat.learnts", stats.learnts);
        gshe_obs::count("sat.restarts", stats.restarts);
        gshe_obs::count("sat.db_gc", stats.db_gcs);
        if stats.db_gcs > 0 {
            gshe_obs::record("attack.solver_gc_ns", stats.gc_ns);
        }
        gshe_obs::count("sat.elim_vars", stats.elim_vars);
        gshe_obs::count("sat.subsumed", stats.subsumed);
        gshe_obs::count("sat.strengthened", stats.strengthened);
        if stats.simplify_ns > 0 {
            gshe_obs::record("sat.simplify_ns", stats.simplify_ns);
        }
        if gshe_obs::enabled() {
            // Final learnt-DB LBD distribution for sb_drill diagnostics.
            for lbd in solver.learnt_lbds() {
                gshe_obs::record("sat.lbd", u64::from(lbd));
            }
        }
        AttackOutcome {
            status,
            key,
            iterations,
            queries: oracle.queries() - queries_before,
            elapsed: start.elapsed(),
            solver_stats: stats,
        }
    };

    for assumptions in &phases {
        'refine: loop {
            if Instant::now() >= deadline {
                return finish(AttackStatus::Timeout, None, iterations, &solver, oracle);
            }
            if let Some(max) = config.max_iterations {
                if iterations >= max {
                    return finish(AttackStatus::Timeout, None, iterations, &solver, oracle);
                }
            }
            match solve_sliced(
                &mut solver,
                assumptions,
                deadline,
                config.conflicts_per_slice,
            ) {
                None => return finish(AttackStatus::Timeout, None, iterations, &solver, oracle),
                Some(SolveResult::Unknown) => {
                    return finish(
                        AttackStatus::ResourceExhausted,
                        None,
                        iterations,
                        &solver,
                        oracle,
                    )
                }
                Some(SolveResult::Unsat) => break 'refine, // phase converged
                Some(SolveResult::Sat) => {
                    iterations += 1;
                    gshe_obs::count("attack.rounds", 1);
                    let first: Vec<bool> =
                        input_lits.iter().map(|&l| solver.model_lit(l)).collect();
                    let mut converged = false;
                    if width == 1 {
                        // Historical scalar round: query the oracle, then
                        // encode and pin both observations (the exact
                        // pre-engine operation sequence).
                        gshe_obs::record("attack.dip_batch_fill", 1);
                        let y = {
                            let _span = gshe_obs::span("attack.oracle");
                            oracle.query(&first)
                        };
                        let mut enc = CircuitEncoder::new(&mut solver);
                        for key in &keys {
                            let outs = encode_keyed_fixed(&mut enc, keyed, key, &first);
                            assert_outputs_equal(&mut enc, &outs, &y);
                        }
                    } else {
                        // Batched discovery: assert the copies *agree* on
                        // each discovered DIP (class-split blocking) and
                        // re-solve for a DIP witnessing a fresh split,
                        // before touching the oracle. An UNSAT here means
                        // the phase has converged — the agreement
                        // constraints are implied by the observations
                        // pinned below, so the outer re-solve is skipped.
                        let mut batch: Vec<(Vec<bool>, Vec<Vec<SigVal>>)> = vec![(
                            first.clone(),
                            encode_agreement(&mut solver, keyed, &keys, &first),
                        )];
                        while batch.len() < width {
                            if Instant::now() >= deadline {
                                break;
                            }
                            if let Some(max) = config.max_iterations {
                                if iterations >= max {
                                    break;
                                }
                            }
                            match solve_sliced(
                                &mut solver,
                                assumptions,
                                deadline,
                                config.conflicts_per_slice,
                            ) {
                                Some(SolveResult::Sat) => {
                                    iterations += 1;
                                    let dip: Vec<bool> =
                                        input_lits.iter().map(|&l| solver.model_lit(l)).collect();
                                    let outs = encode_agreement(&mut solver, keyed, &keys, &dip);
                                    batch.push((dip, outs));
                                }
                                Some(SolveResult::Unsat) => {
                                    converged = true;
                                    break;
                                }
                                // Deadline/budget exhaustion mid-batch:
                                // resolve what we have; the outer solve
                                // re-diagnoses.
                                None | Some(SolveResult::Unknown) => break,
                            }
                        }
                        // The whole batch through the oracle in one
                        // bit-parallel pass, then pin the stored output
                        // signals to the observations.
                        let patterns: Vec<Vec<bool>> =
                            batch.iter().map(|(dip, _)| dip.clone()).collect();
                        gshe_obs::record("attack.dip_batch_fill", batch.len() as u64);
                        let lanes = {
                            let _span = gshe_obs::span("attack.oracle");
                            oracle.query_block(&PatternBlock::from_patterns(&patterns))
                        };
                        let mut enc = CircuitEncoder::new(&mut solver);
                        for (k, (_, per_key)) in batch.iter().enumerate() {
                            let y: Vec<bool> =
                                lanes.iter().map(|lane| (lane >> k) & 1 == 1).collect();
                            for outs in per_key {
                                assert_outputs_equal(&mut enc, outs, &y);
                            }
                        }
                    }
                    if let Some(state) = appsat.as_mut() {
                        if let Some((status, key)) = appsat_round(
                            state,
                            &mut solver,
                            keyed,
                            &keys,
                            &input_lits,
                            oracle,
                            deadline,
                            config,
                            iterations,
                        ) {
                            return finish(status, key, iterations, &solver, oracle);
                        }
                    }
                    if converged {
                        break 'refine;
                    }
                }
            }
        }
    }

    // All phases converged: extract any key consistent with the
    // accumulated I/O constraints (without the miter assumptions).
    match solve_sliced(&mut solver, &[], deadline, config.conflicts_per_slice) {
        None => finish(AttackStatus::Timeout, None, iterations, &solver, oracle),
        Some(SolveResult::Sat) => {
            let key: Vec<bool> = keys[0].iter().map(|&l| solver.model_lit(l)).collect();
            finish(
                AttackStatus::Success,
                Some(key),
                iterations,
                &solver,
                oracle,
            )
        }
        Some(SolveResult::Unsat) => finish(
            AttackStatus::Inconsistent,
            None,
            iterations,
            &solver,
            oracle,
        ),
        Some(SolveResult::Unknown) => finish(
            AttackStatus::ResourceExhausted,
            None,
            iterations,
            &solver,
            oracle,
        ),
    }
}

/// One AppSAT reinforcement round, run whenever the DIP count crosses a
/// `reinforce_every` multiple: extract a candidate key, estimate its error
/// on random block queries, exit early below the threshold, otherwise
/// reinforce the solver with the mismatching observations. Returns a
/// terminal decision ([`AttackStatus::Success`] early exit or
/// [`AttackStatus::Inconsistent`]) or `None` to continue refining.
#[allow(clippy::too_many_arguments)] // borrows of the engine's loop state
fn appsat_round(
    state: &mut AppSatState,
    solver: &mut Solver,
    keyed: &KeyedNetlist,
    keys: &[Vec<Lit>],
    input_lits: &[Lit],
    oracle: &mut dyn Oracle,
    deadline: Instant,
    config: &AttackConfig,
    iterations: u64,
) -> Option<Terminal> {
    if state.reinforce_every == 0 || iterations / state.reinforce_every <= state.rounds {
        return None;
    }
    state.rounds = iterations / state.reinforce_every;

    // Candidate key: any key consistent so far.
    let candidate = match solve_sliced(solver, &[], deadline, config.conflicts_per_slice) {
        Some(SolveResult::Sat) => {
            let k: Vec<bool> = keys[0].iter().map(|&l| solver.model_lit(l)).collect();
            Some(k)
        }
        Some(SolveResult::Unsat) => return Some((AttackStatus::Inconsistent, None)),
        _ => None,
    };
    let cand = candidate?;
    let resolved = keyed
        .resolve(&cand)
        .expect("candidate key has correct width");
    // Block-query reinforcement: the sample patterns are drawn exactly as
    // the scalar loop drew them (sample-major, bit-minor), then answered 64
    // at a time — the chip through `query_block` (still one query per
    // pattern), the candidate through the bit-parallel simulator.
    let n_inputs = input_lits.len();
    let mut cand_sim = Simulator::new(&resolved);
    let mut mismatches = 0usize;
    let mut mismatching: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    let mut remaining = state.samples_per_round;
    while remaining > 0 {
        let take = remaining.min(64);
        remaining -= take;
        let patterns: Vec<Vec<bool>> = (0..take)
            .map(|_| (0..n_inputs).map(|_| state.rng.gen_bool(0.5)).collect())
            .collect();
        let block = PatternBlock::from_patterns(&patterns);
        let y_chip = {
            let _span = gshe_obs::span("attack.oracle");
            oracle.query_block(&block)
        };
        let y_cand = cand_sim.run_masked(&block).expect("interface matches");
        let mut diff = 0u64;
        for (chip, cand_lane) in y_chip.iter().zip(&y_cand) {
            diff |= chip ^ cand_lane;
        }
        diff &= block.valid_mask();
        mismatches += diff.count_ones() as usize;
        while diff != 0 {
            let k = diff.trailing_zeros() as usize;
            diff &= diff - 1;
            let y_k: Vec<bool> = y_chip.iter().map(|lane| (lane >> k) & 1 == 1).collect();
            mismatching.push((block.pattern(k), y_k));
        }
    }
    let err = mismatches as f64 / state.samples_per_round as f64;
    if err <= state.error_threshold {
        return Some((AttackStatus::Success, Some(cand)));
    }
    // Reinforce with the mismatching observations.
    let mut enc = CircuitEncoder::new(solver);
    for (x, y_chip) in mismatching {
        for key in &keys[..2] {
            let outs = encode_keyed_fixed(&mut enc, keyed, key, &x);
            assert_outputs_equal(&mut enc, &outs, &y_chip);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::verify_key;
    use crate::oracle::{NetlistOracle, StochasticOracle};
    use crate::sat_attack::sat_attack;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::{GeneratorConfig, Netlist, NetlistGenerator};

    fn keyed_instance(seed: u64) -> (Netlist, gshe_camo::KeyedNetlist) {
        // 12 inputs / moderate key: tractable in well under a second at
        // every batch width, hard enough that refinement actually loops.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 12, 6, 120).with_seed(seed))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.12, 55);
        let mut rng = StdRng::seed_from_u64(55);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        (nl, keyed)
    }

    #[test]
    fn every_batch_width_recovers_a_correct_key() {
        let (nl, keyed) = keyed_instance(2);
        for width in [1usize, 2, 16, 64] {
            let config = AttackConfig::with_timeout_secs(30).with_dip_batch(width);
            let mut oracle = NetlistOracle::new(&nl);
            let out = refine(&keyed, &mut oracle, &config, &RefinePolicy::Single);
            assert_eq!(out.status, AttackStatus::Success, "width {width}");
            let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
            assert!(v.functionally_equivalent, "width {width}");
            // Block accounting stays per-pattern: every discovered DIP is
            // exactly one oracle query regardless of batching.
            assert_eq!(out.queries, out.iterations, "width {width}");
        }
    }

    #[test]
    fn width_one_is_the_historical_sat_attack() {
        // The `sat_attack` delegation and a direct width-1 engine call must
        // be indistinguishable on a deterministic instance.
        let (nl, keyed) = keyed_instance(3);
        let config = AttackConfig::with_timeout_secs(30);
        let mut o1 = NetlistOracle::new(&nl);
        let via_entry = sat_attack(&keyed, &mut o1, &config);
        let mut o2 = NetlistOracle::new(&nl);
        let via_engine = refine(&keyed, &mut o2, &config, &RefinePolicy::Single);
        assert_eq!(via_entry.status, via_engine.status);
        assert_eq!(via_entry.key, via_engine.key);
        assert_eq!(via_entry.iterations, via_engine.iterations);
        assert_eq!(via_entry.queries, via_engine.queries);
    }

    #[test]
    fn batched_double_dip_recovers_a_correct_key() {
        let (nl, keyed) = keyed_instance(4);
        let config = AttackConfig::with_timeout_secs(30).with_dip_batch(DEFAULT_BATCH_WIDTH);
        let mut oracle = NetlistOracle::new(&nl);
        let out = refine(&keyed, &mut oracle, &config, &RefinePolicy::DoubleDip);
        assert_eq!(out.status, AttackStatus::Success);
        let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
        assert!(v.functionally_equivalent);
    }

    #[test]
    fn batched_rounds_still_collapse_against_noise() {
        // The stochastic defense must beat the batched engine exactly as it
        // beats the scalar loop.
        let (nl, keyed) = keyed_instance(6);
        let mut broken = 0;
        let trials = 3;
        for seed in 0..trials {
            let mut oracle = StochasticOracle::new(&keyed, 0.25, seed);
            let config = AttackConfig::with_timeout_secs(20).with_dip_batch(16);
            let out = refine(&keyed, &mut oracle, &config, &RefinePolicy::Single);
            let failed = match out.status {
                AttackStatus::Inconsistent => true,
                AttackStatus::Success => {
                    !verify_key(&nl, &keyed, out.key.as_ref().unwrap())
                        .unwrap()
                        .functionally_equivalent
                }
                _ => true,
            };
            broken += failed as usize;
        }
        assert!(broken >= trials as usize - 1, "batched attack beat noise");
    }

    #[test]
    fn zero_input_circuit_is_safe_at_every_batch_width() {
        // A key-only circuit has no primary inputs: the batch's single
        // (empty) "pattern" is excluded purely by the agreement
        // constraints, and every width must agree with width 1 — nothing
        // in the batched path may degenerate over zero input literals.
        use gshe_camo::{CamoGate, Candidates, KeyedNetlist};
        use gshe_logic::{Bf2, NetlistBuilder};
        let mut b = NetlistBuilder::new("t");
        let c0 = b.constant(false);
        let c1 = b.constant(true);
        let g = b.gate2("g", Bf2::AND, c0, c1);
        b.output(g);
        let nl = b.finish().unwrap();
        let gate = CamoGate {
            node: g,
            candidates: Candidates::TwoInput(Bf2::ALL.to_vec()),
            key_offset: 0,
            correct_index: Bf2::AND.truth_table() as usize,
        };
        let keyed = KeyedNetlist::new(nl.clone(), vec![gate], 4);
        for width in [1usize, 2, 16] {
            let config = AttackConfig::with_timeout_secs(10).with_dip_batch(width);
            let mut oracle = NetlistOracle::new(&nl);
            let out = refine(&keyed, &mut oracle, &config, &RefinePolicy::Single);
            assert_eq!(out.status, AttackStatus::Success, "width {width}");
            let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
            assert!(v.functionally_equivalent, "width {width}");
        }
    }

    #[test]
    fn tiny_input_space_survives_batch_enumeration() {
        // Regression: a batch wide enough to enumerate *every* input
        // pattern of a small circuit must not poison key extraction. The
        // engine blocks batched DIPs only through agreement constraints,
        // which the oracle pins later imply — a literal input-blocking
        // clause here once turned the assumption-free extraction solve
        // UNSAT (false Inconsistent) at widths > 1.
        use gshe_camo::{CamoGate, Candidates, KeyedNetlist};
        use gshe_logic::{Bf2, NetlistBuilder};
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate2("g", Bf2::AND, a, c);
        b.output(g);
        let nl = b.finish().unwrap();
        let gate = CamoGate {
            node: g,
            candidates: Candidates::TwoInput(Bf2::ALL.to_vec()),
            key_offset: 0,
            correct_index: Bf2::AND.truth_table() as usize,
        };
        let keyed = KeyedNetlist::new(nl.clone(), vec![gate], 4);
        for width in [1usize, 4, 16] {
            let config = AttackConfig::with_timeout_secs(10).with_dip_batch(width);
            let mut oracle = NetlistOracle::new(&nl);
            let out = refine(&keyed, &mut oracle, &config, &RefinePolicy::Single);
            assert_eq!(out.status, AttackStatus::Success, "width {width}");
            let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
            assert!(v.functionally_equivalent, "width {width}");
        }
    }

    #[test]
    fn max_iterations_caps_batched_discovery() {
        // The iteration cap must bite *inside* a batch, not just between
        // rounds.
        let (nl, keyed) = keyed_instance(2);
        let config = AttackConfig {
            max_iterations: Some(3),
            ..AttackConfig::with_timeout_secs(30).with_dip_batch(64)
        };
        let mut oracle = NetlistOracle::new(&nl);
        let out = refine(&keyed, &mut oracle, &config, &RefinePolicy::Single);
        assert!(out.iterations <= 3, "{} iterations", out.iterations);
        assert_eq!(out.status, AttackStatus::Timeout);
    }
}
