//! Cone-of-influence (COI) miter reduction for oracle-guided attacks.
//!
//! A cloaked cell can only be distinguished through outputs its value
//! reaches. On large designs (superblue-scale, hundreds of thousands of
//! gates) a handful of cloaked cells typically influences a small
//! fraction of the outputs — yet the classic miter encodes *two full
//! copies* of the circuit per phase. This module projects the attack onto
//! the **cone of influence** of the cloaked cells:
//!
//! 1. **Affected outputs** — a single forward sweep marks every node
//!    reached by some cloaked cell; the affected outputs are the primary
//!    outputs so marked. Unaffected outputs are key-independent by
//!    construction and need no miter at all.
//! 2. **Cone extraction** — [`Netlist::cone_of`] over the affected
//!    outputs yields a compact netlist containing exactly the transitive
//!    fanin of those outputs, with an [`IdMap`] back to the full design.
//! 3. **Key projection** — cloaked cells inside the cone are remapped to
//!    contiguous key offsets; cells *outside* the cone reach no primary
//!    output at all (otherwise that output would be affected), so any
//!    valid candidate works and the expansion assigns them code 0.
//! 4. **Oracle projection** — [`CoiOracle`] adapts the full working chip
//!    to the cone interface: cone inputs scatter into a full input
//!    vector (false elsewhere — the cone outputs do not depend on those
//!    positions), and full outputs gather down to the affected subset.
//!    Query accounting passes through one-to-one, so rotation periods
//!    and per-pattern query counts are preserved exactly.
//!
//! The DIP loop then runs unchanged on the cone instance and the
//! recovered cone key is [expanded](CoiProjection::expand_key) to a full
//! key. [`CoiMode::Auto`] (the [`AttackConfig`](crate::AttackConfig)
//! default) applies the reduction only above
//! [`COI_AUTO_THRESHOLD`] nodes, keeping small historical instances on
//! the byte-identical full-miter path.

use crate::oracle::Oracle;
use gshe_camo::{CamoGate, KeyedNetlist};
use gshe_logic::{NodeId, PatternBlock};

/// Smallest full-design node count at which [`CoiMode::Auto`] switches
/// the attack onto the cone-of-influence miter. Below this the full
/// miter is cheap and the historical operation sequence (variable
/// numbering, seeded outcomes) is preserved bit-for-bit.
pub const COI_AUTO_THRESHOLD: usize = 100_000;

/// Whether the DIP engine reduces the miter to the cone of influence of
/// the cloaked cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoiMode {
    /// Reduce only when the design has at least [`COI_AUTO_THRESHOLD`]
    /// nodes (the default: large designs get the reduction, small
    /// seeded instances keep their historical byte-identical trace).
    #[default]
    Auto,
    /// Like [`CoiMode::Auto`] with a caller-chosen node threshold.
    AutoAt(usize),
    /// Always reduce (when the cone is a strict subset).
    On,
    /// Never reduce.
    Off,
}

impl CoiMode {
    /// The node-count threshold at or above which this mode engages the
    /// reduction, or `None` when it never engages.
    pub fn threshold(self) -> Option<usize> {
        match self {
            CoiMode::Auto => Some(COI_AUTO_THRESHOLD),
            CoiMode::AutoAt(t) => Some(t),
            CoiMode::On => Some(0),
            CoiMode::Off => None,
        }
    }

    /// Whether this mode engages the reduction on a design of `nodes`
    /// nodes. The affected-output preconditions (non-empty strict subset)
    /// are checked separately by [`CoiProjection::build`].
    pub fn engages(self, nodes: usize) -> bool {
        self.threshold().is_some_and(|t| nodes >= t)
    }

    /// Parses `"auto"`, `"on"`, `"off"`, or `"auto:<nodes>"`.
    pub fn parse(s: &str) -> Option<CoiMode> {
        match s {
            "auto" => Some(CoiMode::Auto),
            "on" => Some(CoiMode::On),
            "off" => Some(CoiMode::Off),
            _ => {
                let t = s.strip_prefix("auto:")?;
                t.parse::<usize>().ok().map(CoiMode::AutoAt)
            }
        }
    }

    /// The spec-file spelling accepted by [`CoiMode::parse`].
    pub fn name(&self) -> String {
        match self {
            CoiMode::Auto => "auto".to_string(),
            CoiMode::AutoAt(t) => format!("auto:{t}"),
            CoiMode::On => "on".to_string(),
            CoiMode::Off => "off".to_string(),
        }
    }
}

/// Full-design **input ordinals** feeding the cone the DIP engine will
/// attack under `mode`, or `None` when the engine stays on the full
/// miter. This mirrors [`CoiProjection::build`]'s engagement decision
/// exactly — same mode gate, same affected-output preconditions — but
/// costs only two linear sweeps and materializes nothing, so callers
/// (the campaign's cone-keyed oracle cache) can key on the cone inputs
/// *before* the attack runs without risking a key-aliasing mismatch.
pub fn cone_inputs(keyed: &KeyedNetlist, mode: CoiMode) -> Option<Vec<usize>> {
    let nl = keyed.netlist();
    if !mode.engages(nl.len()) {
        return None;
    }
    let affected = affected_outputs_of(keyed)?;

    // Reverse sweep: transitive fanin of the affected outputs. Node ids
    // are topological, so one descending pass suffices.
    let mut need = vec![false; nl.len()];
    for &o in &affected {
        need[o.index()] = true;
    }
    for i in (0..nl.len()).rev() {
        if need[i] {
            for f in nl.fanins(NodeId(i as u32)) {
                need[f.index()] = true;
            }
        }
    }
    Some(
        nl.inputs()
            .iter()
            .enumerate()
            .filter(|(_, i)| need[i.index()])
            .map(|(k, _)| k)
            .collect(),
    )
}

/// Primary outputs reached by some cloaked cell under `mode`'s
/// engagement gate, or `None` when callers should stay on the full
/// design (mode off or below threshold, no affected output, or every
/// output affected). Same decision as [`CoiProjection::build`], at the
/// cost of two linear sweeps — used by cone-scoped key verification,
/// which only needs the output set, not the materialized cone.
pub fn affected_outputs(keyed: &KeyedNetlist, mode: CoiMode) -> Option<Vec<NodeId>> {
    if !mode.engages(keyed.netlist().len()) {
        return None;
    }
    affected_outputs_of(keyed)
}

/// Primary outputs reached by some cloaked cell, or `None` when the
/// projection preconditions fail (no affected output, or every output
/// affected).
fn affected_outputs_of(keyed: &KeyedNetlist) -> Option<Vec<NodeId>> {
    let nl = keyed.netlist();
    // Forward taint sweep: a node is tainted when it is a cloaked cell
    // or any fanin is tainted. Node order is topological, so one
    // ascending pass suffices — no fanout adjacency needed.
    let mut tainted = vec![false; nl.len()];
    for g in keyed.camo_gates() {
        tainted[g.node.index()] = true;
    }
    for i in 0..nl.len() {
        if !tainted[i] && nl.fanins(NodeId(i as u32)).any(|f| tainted[f.index()]) {
            tainted[i] = true;
        }
    }
    let affected: Vec<NodeId> = nl
        .outputs()
        .iter()
        .copied()
        .filter(|o| tainted[o.index()])
        .collect();
    if affected.is_empty() || affected.len() == nl.outputs().len() {
        return None;
    }
    Some(affected)
}

/// A keyed netlist projected onto the cone of influence of its cloaked
/// cells, with the maps needed to run the attack on the cone and expand
/// the result back to the full design.
#[derive(Debug, Clone)]
pub struct CoiProjection {
    keyed: KeyedNetlist,
    /// Cone input ordinal → full input ordinal.
    input_map: Vec<usize>,
    /// Cone output ordinal → full output ordinal.
    output_map: Vec<usize>,
    /// Cone key bit → full key bit.
    key_map: Vec<usize>,
    full_key_len: usize,
    full_num_inputs: usize,
    /// Statistics of the cone cleanup pass
    /// ([`gshe_logic::optimize_protected`]) run before encoding.
    opt_report: gshe_logic::OptReport,
}

impl CoiProjection {
    /// Builds the projection for `keyed` under `mode`, or `None` when the
    /// attack should run on the full design: mode [`CoiMode::Off`], an
    /// [`CoiMode::Auto`] design below the threshold, no affected outputs
    /// (the key is unconstrained — the full miter converges immediately),
    /// or every output affected (no reduction to be had).
    pub fn build(keyed: &KeyedNetlist, mode: CoiMode) -> Option<CoiProjection> {
        let nl = keyed.netlist();
        if !mode.engages(nl.len()) {
            return None;
        }
        let affected = affected_outputs_of(keyed)?;
        let mut is_affected = vec![false; nl.len()];
        for &o in &affected {
            is_affected[o.index()] = true;
        }
        let output_map: Vec<usize> = nl
            .outputs()
            .iter()
            .enumerate()
            .filter(|(_, o)| is_affected[o.index()])
            .map(|(k, _)| k)
            .collect();

        let (cone, map) = nl.cone_of(&affected);

        // Remap in-cone cloaked cells onto contiguous cone key offsets.
        let mut gates: Vec<CamoGate> = Vec::new();
        let mut key_map = Vec::new();
        let mut offset = 0usize;
        for g in keyed.camo_gates() {
            if let Some(cone_node) = map.to_cone(g.node) {
                key_map.extend((0..g.key_bits()).map(|b| g.key_offset + b));
                gates.push(CamoGate {
                    node: cone_node,
                    candidates: g.candidates.clone(),
                    key_offset: offset,
                    correct_index: g.correct_index,
                });
                offset += g.key_bits();
            }
        }

        // Cone input ordinal → full input ordinal.
        let mut full_input_ord = vec![usize::MAX; nl.len()];
        for (k, i) in nl.inputs().iter().enumerate() {
            full_input_ord[i.index()] = k;
        }
        let input_map: Vec<usize> = cone
            .inputs()
            .iter()
            .map(|&ci| full_input_ord[map.to_full(ci).index()])
            .collect();

        // Cone cleanup before encoding: resolution and camouflaging leave
        // constants and pass-through cells behind, and the extracted cone
        // re-exposes them. The cloaked cells are *protected* — emitted
        // verbatim with explicit (not absorbed) fanin inversions — because
        // their visible function is exactly what the attacker does not
        // trust; the pass preserves the keyed function under every
        // candidate substitution. Input/output positional order is
        // preserved, so `input_map`/`output_map` stay valid.
        let protected: Vec<gshe_logic::NodeId> = gates.iter().map(|g| g.node).collect();
        let (opt_cone, opt_report, opt_map) = gshe_logic::optimize_protected(&cone, &protected);
        for g in &mut gates {
            g.node = opt_map[g.node.index()].expect("protected cloaked cells survive cleanup");
        }

        Some(CoiProjection {
            keyed: KeyedNetlist::new(opt_cone, gates, offset),
            input_map,
            output_map,
            key_map,
            full_key_len: keyed.key_len(),
            full_num_inputs: nl.inputs().len(),
            opt_report,
        })
    }

    /// The cone-projected keyed netlist the attack runs on.
    pub fn keyed(&self) -> &KeyedNetlist {
        &self.keyed
    }

    /// Expands a key recovered on the cone to a full-design key. Bits of
    /// cloaked cells outside the cone are left at `false` (candidate
    /// code 0 — always a valid code, and those cells reach no primary
    /// output, so any candidate preserves functional equivalence).
    ///
    /// # Panics
    ///
    /// Panics if `cone_key` does not match the cone key width.
    pub fn expand_key(&self, cone_key: &[bool]) -> Vec<bool> {
        assert_eq!(cone_key.len(), self.key_map.len(), "cone key width");
        let mut full = vec![false; self.full_key_len];
        for (c, &f) in self.key_map.iter().enumerate() {
            full[f] = cone_key[c];
        }
        full
    }

    /// Primary outputs of the full design the cloaked cells can reach.
    pub fn affected_outputs(&self) -> &[usize] {
        &self.output_map
    }

    /// Nodes in the cone vs. the full design, as a reduction diagnostic.
    pub fn cone_len(&self) -> usize {
        self.keyed.netlist().len()
    }

    /// Statistics of the protected cleanup pass run on the cone before
    /// encoding (folded constants, collapsed pass-through cells, swept
    /// dead gates).
    pub fn opt_report(&self) -> gshe_logic::OptReport {
        self.opt_report
    }

    /// Cone input ordinal → full-design input ordinal.
    pub fn input_map(&self) -> &[usize] {
        &self.input_map
    }
}

/// Adapts a full-design working chip to the cone interface of a
/// [`CoiProjection`]: scatter cone inputs into a full input vector
/// (false-filled elsewhere), gather affected outputs back out. Query
/// accounting delegates one-to-one to the wrapped oracle.
pub struct CoiOracle<'a> {
    inner: &'a mut dyn Oracle,
    proj: &'a CoiProjection,
    scatter: Vec<bool>,
}

impl<'a> CoiOracle<'a> {
    /// Wraps `inner` (the full chip) behind `proj`'s cone interface.
    pub fn new(inner: &'a mut dyn Oracle, proj: &'a CoiProjection) -> Self {
        let scatter = vec![false; proj.full_num_inputs];
        CoiOracle {
            inner,
            proj,
            scatter,
        }
    }
}

impl Oracle for CoiOracle<'_> {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.scatter.fill(false);
        for (k, &full) in self.proj.input_map.iter().enumerate() {
            self.scatter[full] = inputs[k];
        }
        let y = self.inner.query(&self.scatter);
        self.proj.output_map.iter().map(|&o| y[o]).collect()
    }

    fn query_block(&mut self, block: &PatternBlock) -> Vec<u64> {
        let mut lanes = vec![0u64; self.proj.full_num_inputs];
        for (k, &full) in self.proj.input_map.iter().enumerate() {
            lanes[full] = block.lanes[k];
        }
        let full_block = PatternBlock {
            lanes,
            count: block.count,
        };
        let y = self.inner.query_block(&full_block);
        self.proj.output_map.iter().map(|&o| y[o]).collect()
    }

    fn num_inputs(&self) -> usize {
        self.proj.input_map.len()
    }

    fn num_outputs(&self) -> usize {
        self.proj.output_map.len()
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::verify_key;
    use crate::oracle::NetlistOracle;
    use crate::sat_attack::{sat_attack, AttackConfig, AttackStatus};
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::{Bf2, GeneratorConfig, Netlist, NetlistBuilder, NetlistGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two independent AND cones sharing nothing; camouflage only the
    /// first cone's gate, so exactly one output is affected.
    fn split_design() -> (Netlist, KeyedNetlist) {
        let mut b = NetlistBuilder::new("split");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let e = b.input("d");
        let g1 = b.gate2("g1", Bf2::AND, a, c);
        let g2 = b.gate2("g2", Bf2::OR, d, e);
        b.output(g1);
        b.output(g2);
        let nl = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let keyed = camouflage(&nl, &[g1], CamoScheme::GsheAll16, &mut rng).unwrap();
        (nl, keyed)
    }

    #[test]
    fn projection_drops_unaffected_logic() {
        let (_, keyed) = split_design();
        let proj = CoiProjection::build(&keyed, CoiMode::On).expect("one of two outputs affected");
        assert_eq!(proj.affected_outputs(), &[0]);
        let cone = proj.keyed().netlist();
        assert_eq!(cone.inputs().len(), 2, "only a, b feed the cone");
        assert_eq!(cone.outputs().len(), 1);
        assert!(proj.cone_len() < keyed.netlist().len());
        assert_eq!(proj.keyed().key_len(), keyed.key_len());
    }

    #[test]
    fn auto_mode_keeps_small_designs_on_the_full_path() {
        let (_, keyed) = split_design();
        assert!(CoiProjection::build(&keyed, CoiMode::Auto).is_none());
        assert!(CoiProjection::build(&keyed, CoiMode::Off).is_none());
    }

    #[test]
    fn fully_affected_designs_skip_the_projection() {
        // Every output in the cloaked cells' cone: nothing to reduce.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 2, 60).with_seed(1))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 1.0, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        if CoiProjection::build(&keyed, CoiMode::On).is_some() {
            // Only legitimate when some output genuinely escapes the cone.
            let proj = CoiProjection::build(&keyed, CoiMode::On).unwrap();
            assert!(proj.affected_outputs().len() < nl.outputs().len());
        }
    }

    #[test]
    fn cone_oracle_matches_full_oracle_on_affected_outputs() {
        let (nl, keyed) = split_design();
        let proj = CoiProjection::build(&keyed, CoiMode::On).unwrap();
        let mut full = NetlistOracle::new(&nl);
        let mut inner = NetlistOracle::new(&nl);
        let mut cone = CoiOracle::new(&mut inner, &proj);
        assert_eq!(cone.num_inputs(), 2);
        assert_eq!(cone.num_outputs(), 1);
        for p in 0..4u32 {
            let cone_in: Vec<bool> = (0..2).map(|k| (p >> k) & 1 == 1).collect();
            let y_cone = cone.query(&cone_in);
            // Reconstruct the equivalent full query by scattering.
            let mut full_in = vec![false; 4];
            for (k, &fi) in proj.input_map.iter().enumerate() {
                full_in[fi] = cone_in[k];
            }
            let y_full = full.query(&full_in);
            assert_eq!(y_cone, vec![y_full[0]], "p={p}");
        }
        assert_eq!(cone.queries(), 4);
    }

    #[test]
    fn expanded_cone_key_is_functionally_correct() {
        let (nl, keyed) = split_design();
        let proj = CoiProjection::build(&keyed, CoiMode::On).unwrap();
        let mut inner = NetlistOracle::new(&nl);
        let mut cone_oracle = CoiOracle::new(&mut inner, &proj);
        let out = sat_attack(
            proj.keyed(),
            &mut cone_oracle,
            &AttackConfig::with_timeout_secs(10),
        );
        assert_eq!(out.status, AttackStatus::Success);
        let full_key = proj.expand_key(out.key.as_ref().unwrap());
        assert_eq!(full_key.len(), keyed.key_len());
        let v = verify_key(&nl, &keyed, &full_key).unwrap();
        assert!(v.functionally_equivalent);
    }

    #[test]
    fn engine_auto_threshold_is_transparent_end_to_end() {
        // coi: On through the engine entry point must recover an
        // equivalent key to coi: Off on the same seeded instance.
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 10, 8, 120).with_seed(11))
            .unwrap()
            .generate();
        let picks = select_gates(&nl, 0.05, 13);
        let mut rng = StdRng::seed_from_u64(13);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let base = AttackConfig::with_timeout_secs(20);
        let mut o1 = NetlistOracle::new(&nl);
        let off = sat_attack(&keyed, &mut o1, &base.with_coi(CoiMode::Off));
        let mut o2 = NetlistOracle::new(&nl);
        let on = sat_attack(&keyed, &mut o2, &base.with_coi(CoiMode::On));
        assert_eq!(off.status, AttackStatus::Success);
        assert_eq!(on.status, AttackStatus::Success);
        for out in [&off, &on] {
            let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
            assert!(v.functionally_equivalent);
        }
    }

    #[test]
    fn cone_inputs_matches_projection_engagement_and_map() {
        let (_, keyed) = split_design();
        // The cheap sweep and the full build must agree on engagement for
        // every mode, and on the input set whenever both engage.
        for mode in [
            CoiMode::Auto,
            CoiMode::On,
            CoiMode::Off,
            CoiMode::AutoAt(0),
            CoiMode::AutoAt(3),
            CoiMode::AutoAt(1_000_000),
        ] {
            let inputs = cone_inputs(&keyed, mode);
            let proj = CoiProjection::build(&keyed, mode);
            assert_eq!(inputs.is_some(), proj.is_some(), "{mode:?}");
            if let (Some(inputs), Some(proj)) = (inputs, proj) {
                let mut from_proj = proj.input_map().to_vec();
                from_proj.sort_unstable();
                assert_eq!(inputs, from_proj, "{mode:?}");
            }
        }
        // An AutoAt threshold at or below the node count engages, above
        // it does not.
        let n = keyed.netlist().len();
        assert!(cone_inputs(&keyed, CoiMode::AutoAt(n)).is_some());
        assert!(cone_inputs(&keyed, CoiMode::AutoAt(n + 1)).is_none());
    }

    #[test]
    fn coi_mode_parse_round_trips() {
        for (text, mode) in [
            ("auto", CoiMode::Auto),
            ("on", CoiMode::On),
            ("off", CoiMode::Off),
            ("auto:20000", CoiMode::AutoAt(20_000)),
        ] {
            assert_eq!(CoiMode::parse(text), Some(mode));
            assert_eq!(mode.name(), text);
        }
        assert_eq!(CoiMode::parse("auto:"), None);
        assert_eq!(CoiMode::parse("sometimes"), None);
        assert_eq!(CoiMode::Auto.threshold(), Some(COI_AUTO_THRESHOLD));
        assert!(!CoiMode::Off.engages(usize::MAX));
        assert!(CoiMode::On.engages(0));
    }

    #[test]
    fn auto_at_engages_small_designs_through_the_engine() {
        let (nl, keyed) = split_design();
        let proj = CoiProjection::build(&keyed, CoiMode::AutoAt(4)).expect("above threshold");
        assert!(proj.cone_len() < nl.len());
        // And the default threshold keeps the same design on the full path.
        assert!(CoiProjection::build(&keyed, CoiMode::Auto).is_none());
    }
}
