//! A uniform, `Send`-able entry point over the three attacks.
//!
//! The campaign engine (and anything else that schedules attacks across
//! threads) needs one budgeted call signature instead of three: an
//! [`AttackRunner`] names the algorithm, carries its wall-clock budget, and
//! is a plain `Copy + Send` value, so a job description can cross thread
//! boundaries and the attack itself runs wherever the job lands.

use crate::appsat::{appsat_attack, AppSatConfig};
use crate::double_dip::double_dip_attack;
use crate::oracle::Oracle;
use crate::sat_attack::{sat_attack, AttackConfig, AttackOutcome};
use gshe_camo::KeyedNetlist;
use std::time::Duration;

/// Which attack algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// The oracle-guided SAT attack (Subramanyan et al.).
    Sat,
    /// Double DIP (Shen & Zhou): each query rules out ≥ 2 wrong keys.
    DoubleDip,
    /// AppSAT (Shamsi et al.): SAT attack with random-query reinforcement
    /// and approximate early exit.
    AppSat,
}

impl AttackKind {
    /// All attack kinds, in the paper's presentation order.
    pub const ALL: [AttackKind; 3] = [AttackKind::Sat, AttackKind::DoubleDip, AttackKind::AppSat];

    /// Short machine-friendly name (used in spec files and CSV headers).
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Sat => "sat",
            AttackKind::DoubleDip => "double-dip",
            AttackKind::AppSat => "appsat",
        }
    }

    /// Parses [`AttackKind::name`] back into a kind.
    pub fn parse(name: &str) -> Option<AttackKind> {
        AttackKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully-specified, budgeted attack invocation: algorithm + limits.
///
/// `Copy + Send + 'static`, so it can be embedded in job descriptions that
/// move across worker threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackRunner {
    /// The algorithm.
    pub kind: AttackKind,
    /// Budget and solver limits shared by all three algorithms.
    pub config: AttackConfig,
    /// Seed for AppSAT's random reinforcement queries (ignored by the
    /// other attacks).
    pub seed: u64,
}

impl AttackRunner {
    /// A runner with the given wall-clock budget and default limits.
    pub fn new(kind: AttackKind, timeout: Duration, seed: u64) -> Self {
        AttackRunner {
            kind,
            config: AttackConfig {
                timeout,
                ..Default::default()
            },
            seed,
        }
    }

    /// A runner with full control over the engine limits — the scoring
    /// entry point for callers (the campaign profile search) that tune
    /// `dip_batch`/budgets per evaluation instead of per campaign.
    pub fn with_config(kind: AttackKind, config: AttackConfig, seed: u64) -> Self {
        AttackRunner { kind, config, seed }
    }

    /// Returns the runner with its DIP batch width set to `width` (see
    /// [`AttackConfig::dip_batch`];
    /// [`crate::dip_engine::DEFAULT_BATCH_WIDTH`] is the recommended
    /// throughput setting for scoring runs).
    pub fn with_dip_batch(self, width: usize) -> Self {
        AttackRunner {
            config: self.config.with_dip_batch(width),
            ..self
        }
    }

    /// Runs the configured attack against `keyed` using `oracle`.
    pub fn run(&self, keyed: &KeyedNetlist, oracle: &mut dyn Oracle) -> AttackOutcome {
        match self.kind {
            AttackKind::Sat => sat_attack(keyed, oracle, &self.config),
            AttackKind::DoubleDip => double_dip_attack(keyed, oracle, &self.config),
            AttackKind::AppSat => {
                let config = AppSatConfig {
                    base: self.config,
                    seed: self.seed,
                    ..Default::default()
                };
                appsat_attack(keyed, oracle, &config)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::verify_key;
    use crate::oracle::NetlistOracle;
    use crate::sat_attack::AttackStatus;
    use gshe_camo::{camouflage, select_gates, CamoScheme};
    use gshe_logic::bench_format::{parse_bench, C17_BENCH};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn send_check<T: Send + 'static>(_: &T) {}

    #[test]
    fn runner_is_send_and_breaks_c17_with_every_kind() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        for kind in AttackKind::ALL {
            let runner = AttackRunner::new(kind, Duration::from_secs(30), 1);
            send_check(&runner);
            let mut oracle = NetlistOracle::new(&nl);
            let out = runner.run(&keyed, &mut oracle);
            assert_eq!(out.status, AttackStatus::Success, "{kind}");
            let v = verify_key(&nl, &keyed, out.key.as_ref().unwrap()).unwrap();
            assert!(v.functionally_equivalent, "{kind}");
        }
    }

    #[test]
    fn with_config_and_batch_width_reach_the_engine() {
        // The scoring entry point: a width-16 runner must still break the
        // instance, issuing no more solver rounds than queries.
        let nl = parse_bench(C17_BENCH).unwrap();
        let picks = select_gates(&nl, 1.0, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).unwrap();
        let config = crate::AttackConfig::with_timeout_secs(30);
        let runner = AttackRunner::with_config(AttackKind::Sat, config, 1).with_dip_batch(16);
        assert_eq!(runner.config.dip_batch, 16);
        let mut oracle = NetlistOracle::new(&nl);
        let out = runner.run(&keyed, &mut oracle);
        assert_eq!(out.status, AttackStatus::Success);
        assert!(
            verify_key(&nl, &keyed, out.key.as_ref().unwrap())
                .unwrap()
                .functionally_equivalent
        );
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in AttackKind::ALL {
            assert_eq!(AttackKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(AttackKind::parse("nope"), None);
    }
}
