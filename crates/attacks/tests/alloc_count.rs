//! Pins the oracle stack's steady-state allocation behaviour: after
//! warm-up, a block query performs exactly **one** heap allocation — the
//! returned lane vector — on both the static and the rotating path. The
//! per-epoch segment buffers and the evaluation scratch are hoisted onto
//! the stack, so they must not re-allocate per call (the regression this
//! test pins: the rotating path once collected a fresh `Vec` per epoch
//! segment).

use gshe_attacks::{NetlistOracle, Oracle, OracleStack};
use gshe_camo::{camouflage, select_gates, CamoScheme};
use gshe_logic::bench_format::{parse_bench, C17_BENCH};
use gshe_logic::PatternBlock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts every allocation (and growing reallocation) through the global
/// allocator.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn static_block_query_allocates_only_the_return_vector() {
    let nl = parse_bench(C17_BENCH).unwrap();
    let mut oracle = NetlistOracle::new(&nl);
    let mut rng = StdRng::seed_from_u64(1);
    let blocks: Vec<PatternBlock> = (0..12).map(|_| PatternBlock::random(5, &mut rng)).collect();

    // Warm-up: sizes the hoisted evaluation scratch.
    for block in &blocks[..2] {
        let _ = oracle.query_block(block);
    }

    let rounds = 10;
    let n = allocs_during(|| {
        for block in &blocks[2..] {
            let lanes = oracle.query_block(block);
            assert_eq!(lanes.len(), 2);
        }
    });
    assert_eq!(
        n, rounds,
        "static query_block must allocate exactly the returned lane vector"
    );
}

#[test]
fn rotating_block_query_allocates_only_the_return_vector() {
    let nl = parse_bench(C17_BENCH).unwrap();
    let picks = select_gates(&nl, 1.0, 3);
    let mut camo_rng = StdRng::seed_from_u64(0);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut camo_rng).unwrap();

    // Period 7 splits every 64-pattern block into ten epoch segments —
    // but no key rotation fires inside the measured window if we measure
    // between boundaries. Rotations themselves legitimately allocate (a
    // fresh resolved netlist), so pick a period larger than the measured
    // query volume after warm-up.
    let mut stack = OracleStack::rotating(&keyed, 100_000, 4);
    let mut rng = StdRng::seed_from_u64(2);
    let blocks: Vec<PatternBlock> = (0..12).map(|_| PatternBlock::random(5, &mut rng)).collect();
    for block in &blocks[..2] {
        let _ = stack.query_block(block);
    }

    let rounds = 10;
    let n = allocs_during(|| {
        for block in &blocks[2..] {
            let lanes = stack.query_block(block);
            assert_eq!(lanes.len(), 2);
        }
    });
    assert_eq!(
        n, rounds,
        "rotating query_block must reuse the hoisted segment buffer"
    );
}

#[test]
fn scalar_queries_allocate_only_the_return_vector() {
    let nl = parse_bench(C17_BENCH).unwrap();
    let mut oracle = NetlistOracle::new(&nl);
    let inputs = [true, false, true, false, true];
    for _ in 0..2 {
        let _ = oracle.query(&inputs);
    }
    let rounds = 10;
    let n = allocs_during(|| {
        for _ in 0..rounds {
            let y = oracle.query(&inputs);
            assert_eq!(y.len(), 2);
        }
    });
    assert_eq!(
        n, rounds,
        "scalar query must allocate exactly the returned output vector"
    );
}
