//! Superblue-scale smoke test: one full campaign-style attack cell on
//! the **unscaled** `sb1` instance (8,320 inputs / 13,025 outputs /
//! 856,403 gates) must complete inside a wall-clock budget with the
//! netlist arena's footprint bounded. This is the acceptance gate for
//! the flat-arena IR + cone-of-influence miter path: before them, the
//! `Vec`-of-`String` representation and whole-circuit miter made this
//! size untouchable.
//!
//! Camouflage placement is **cone-aware**, like a defender provisioning
//! a cloaked cell with a bounded attack surface: a cheap taint/cone
//! scan (two linear passes per candidate, no materialization) ranks
//! candidate gates by the size of their affected-output fanin cone, and
//! the cell with the smallest cone is cloaked. On this netlist that
//! still leaves a ~27k-node cone — three orders of magnitude above the
//! auto threshold's view of "small" designs, and the SAT miter over it
//! carries thousands of free primary inputs, so the attack does real
//! solver work while staying inside the budget. A uniformly random
//! placement taints 90%+ of the netlist (measured), which is exactly
//! the full-miter wall this test exists to prove we no longer hit.
//!
//! Ignored by default; CI runs it explicitly (release — a debug build
//! does the same work but the sweeps take ~10× longer):
//!
//! ```text
//! cargo test -q --release -- --ignored sb1_smoke
//! ```

use gshe_attacks::{sat_attack, AttackConfig, AttackStatus, CoiMode, CoiProjection, NetlistOracle};
use gshe_camo::{camouflage, select_gates_count, CamoScheme};
use gshe_logic::{suites, Netlist, NodeId, PatternBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Size of the fanin cone of the outputs affected by `picks`, or `None`
/// when the picks influence no output or every output (the cases where
/// the COI projection declines to engage). Two O(n) passes over the
/// arena — cheap enough to scan many candidates.
fn cone_size(nl: &Netlist, picks: &[NodeId]) -> Option<usize> {
    let mut tainted = vec![false; nl.len()];
    for &p in picks {
        tainted[p.index()] = true;
    }
    for i in 0..nl.len() {
        if !tainted[i] && nl.fanins(NodeId(i as u32)).any(|f| tainted[f.index()]) {
            tainted[i] = true;
        }
    }
    let affected: Vec<NodeId> = nl
        .outputs()
        .iter()
        .copied()
        .filter(|o| tainted[o.index()])
        .collect();
    if affected.is_empty() || affected.len() == nl.outputs().len() {
        return None;
    }
    let mut need = vec![false; nl.len()];
    for &o in &affected {
        need[o.index()] = true;
    }
    for i in (0..nl.len()).rev() {
        if need[i] {
            for f in nl.fanins(NodeId(i as u32)) {
                need[f.index()] = true;
            }
        }
    }
    Some(need.iter().filter(|&&x| x).count())
}

#[test]
#[ignore = "superblue-scale; CI runs `cargo test -q --release -- --ignored sb1_smoke`"]
fn sb1_smoke() {
    let started = Instant::now();
    let budget = Duration::from_secs(600);

    // Full-scale sb1 — no scale-down factor.
    let spec = suites::spec("sb1").expect("superblue suite present");
    let nl = suites::benchmark(spec, 1, 1);
    assert!(nl.gate_count() >= 856_000, "unscaled: {}", nl.gate_count());

    // The flat arena stays within ~tens of bytes per node (meta byte,
    // two u32 fanins, interned name, io lists); measured ~17 MiB here.
    // 128 MiB is generous headroom for the assert while still an order
    // of magnitude below what per-node `String`/`Vec` storage cost.
    let bytes = nl.arena_bytes();
    assert!(
        bytes < 128 << 20,
        "arena for {} nodes took {bytes} bytes",
        nl.len()
    );

    // Cone-aware placement: cloak the candidate gate with the smallest
    // affected-output fanin cone (deterministic — the scan is seeded).
    let (_, best_picks) = (0..96u64)
        .filter_map(|seed| {
            let picks = select_gates_count(&nl, 1, seed);
            cone_size(&nl, &picks).map(|c| (c, picks))
        })
        .min_by_key(|&(c, _)| c)
        .expect("some candidate has a proper cone");
    let mut rng = StdRng::seed_from_u64(3);
    let keyed = camouflage(&nl, &best_picks, CamoScheme::GsheAll16, &mut rng).expect("camouflage");

    // sb1 is far above the COI auto threshold: the projection must
    // engage, and with this placement the cone is a small slice.
    let proj = CoiProjection::build(&keyed, CoiMode::Auto).expect("auto engages at 856k nodes");
    assert!(
        proj.cone_len() * 4 < nl.len(),
        "cone {} of {} nodes",
        proj.cone_len(),
        nl.len()
    );

    // One campaign-style cell: batched SAT attack against the exact
    // working chip. The miter solves over a ~27k-node cone with
    // thousands of free inputs (~3 min of real CDCL work measured).
    let mut oracle = NetlistOracle::new(&nl);
    let config = AttackConfig::with_timeout_secs(480).with_dip_batch(16);
    let outcome = sat_attack(&keyed, &mut oracle, &config);
    assert_eq!(outcome.status, AttackStatus::Success, "{outcome:?}");
    let key = outcome.key.expect("successful attack returns a key");

    // Spot-check functional correctness on live patterns (full SAT
    // equivalence at 856k gates is a benchmark, not a smoke test).
    let resolved = keyed.resolve(&key).expect("key has the declared width");
    let mut pat_rng = StdRng::seed_from_u64(11);
    for _ in 0..2 {
        let block = PatternBlock::random(nl.inputs().len(), &mut pat_rng);
        let pattern = block.pattern(0);
        assert_eq!(resolved.evaluate(&pattern), nl.evaluate(&pattern));
    }

    let elapsed = started.elapsed();
    assert!(
        elapsed < budget,
        "sb1 smoke took {elapsed:?} (budget {budget:?})"
    );
}
