//! End-to-end contract of the cone-of-influence miter reduction on a
//! real campaign cell: attacking s38584 with [`CoiMode::On`] and
//! [`CoiMode::Off`] must both recover *functionally correct* keys (exact
//! SAT equivalence of the resolved netlists against the original), and
//! the COI encoding must never be larger than the full-netlist encoding
//! (clause count of one symbolic keyed copy, measured in fresh solvers).
//!
//! The recovered key bits need not be syntactically identical — camo
//! gates outside every affected output's cone are unconstrained by the
//! oracle, and the COI path resolves them to code 0 — so the test
//! asserts functional equivalence, which is the property the campaign
//! scores.

use gshe_attacks::{
    encode_keyed, sat_attack, verify_key, AttackConfig, AttackStatus, CoiMode, CoiProjection,
    NetlistOracle,
};
use gshe_camo::{camouflage, select_gates_count, CamoScheme, KeyedNetlist};
use gshe_logic::{suites, Netlist};
use gshe_sat::{CircuitEncoder, Lit, Solver};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// s38584 (the ISCAS-89 cell the paper's Table IV rows use) at scale 8:
/// the full 304-output interface is kept, so most outputs lie outside
/// the camouflaged gates' cones and the COI path does real work, while
/// both attack variants stay debug-build fast.
fn s38584_keyed() -> (Netlist, KeyedNetlist) {
    let spec = suites::spec("s38584").expect("s-suite benchmark present");
    let nl = suites::benchmark(spec, 8, 1);
    let picks = select_gates_count(&nl, 4, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).expect("camouflage");
    (nl, keyed)
}

/// Clause count of one symbolic keyed copy in a fresh solver.
fn encoding_clauses(keyed: &KeyedNetlist) -> usize {
    let mut s = Solver::new();
    let key_lits: Vec<Lit> = (0..keyed.key_len())
        .map(|_| Lit::pos(s.new_var()))
        .collect();
    let mut enc = CircuitEncoder::new(&mut s);
    encode_keyed(&mut enc, keyed, &key_lits);
    s.num_clauses()
}

#[test]
fn coi_and_full_attacks_agree_on_s38584() {
    let (nl, keyed) = s38584_keyed();

    // Unscaled s38584 sits below the Auto threshold, so force each path.
    let mut keys = Vec::new();
    for coi in [CoiMode::On, CoiMode::Off] {
        let mut oracle = NetlistOracle::new(&nl);
        let config = AttackConfig::default().with_coi(coi);
        let outcome = sat_attack(&keyed, &mut oracle, &config);
        assert_eq!(
            outcome.status,
            AttackStatus::Success,
            "attack with {coi:?} must converge"
        );
        let key = outcome.key.expect("successful attack returns a key");
        let verdict = verify_key(&nl, &keyed, &key).expect("key has the declared width");
        assert!(
            verdict.functionally_equivalent,
            "key recovered with {coi:?} must be functionally correct"
        );
        keys.push(key);
    }

    // Both paths exercised real work: the COI projection exists for this
    // cell (some outputs are unaffected by the 4 camo gates).
    let proj = CoiProjection::build(&keyed, CoiMode::On)
        .expect("s38584 with 4 camo gates has a nontrivial cone");
    assert!(proj.cone_len() < keyed.netlist().len());

    // The reduced miter is never larger than the full one.
    let full_clauses = encoding_clauses(&keyed);
    let coi_clauses = encoding_clauses(proj.keyed());
    assert!(
        coi_clauses <= full_clauses,
        "COI encoding ({coi_clauses} clauses) must not exceed full ({full_clauses})"
    );
}
