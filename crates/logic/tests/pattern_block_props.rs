//! Property tests for the bit-parallel pattern block: pack/extract
//! round-trips and the `valid_mask` invariant that the simulator, the
//! oracle cache, and the equivalence checker all lean on.

use gshe_logic::PatternBlock;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `from_patterns` → `pattern(k)` is the identity for every row, for
    /// any pattern count in 1..=64 and any width.
    #[test]
    fn pack_then_extract_round_trips(
        count in 1usize..=64,
        width in 1usize..40,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns: Vec<Vec<bool>> = (0..count)
            .map(|_| (0..width).map(|_| rand::Rng::gen_bool(&mut rng, 0.5)).collect())
            .collect();
        let block = PatternBlock::from_patterns(&patterns);
        prop_assert_eq!(block.count, count);
        prop_assert_eq!(block.lanes.len(), width);
        for (k, row) in patterns.iter().enumerate() {
            prop_assert_eq!(&block.pattern(k), row, "row {}", k);
        }
    }

    /// `valid_mask` has exactly `count` low bits set, and no lane of a
    /// packed block ever carries bits outside the mask.
    #[test]
    fn valid_mask_invariant(
        count in 1usize..=64,
        width in 1usize..40,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB10C);
        let patterns: Vec<Vec<bool>> = (0..count)
            .map(|_| (0..width).map(|_| rand::Rng::gen_bool(&mut rng, 0.5)).collect())
            .collect();
        let block = PatternBlock::from_patterns(&patterns);
        let mask = block.valid_mask();
        prop_assert_eq!(mask.count_ones() as usize, count);
        if count < 64 {
            prop_assert_eq!(mask, (1u64 << count) - 1);
        } else {
            prop_assert_eq!(mask, !0u64);
        }
        for (i, &lane) in block.lanes.iter().enumerate() {
            prop_assert_eq!(lane & !mask, 0, "lane {} spills outside the mask", i);
        }
    }

    /// Random blocks always claim 64 valid patterns and extract cleanly.
    #[test]
    fn random_blocks_are_full(width in 1usize..40, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let block = PatternBlock::random(width, &mut rng);
        prop_assert_eq!(block.count, 64);
        prop_assert_eq!(block.valid_mask(), !0u64);
        prop_assert_eq!(block.pattern(63).len(), width);
    }
}
