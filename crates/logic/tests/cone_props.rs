//! Property tests for [`Netlist::cone_of`]: on arbitrary generated
//! netlists and arbitrary output subsets, evaluating the extracted cone
//! (with its inputs gathered from the full pattern block through the
//! [`IdMap`]) is *bit-identical* to evaluating the full netlist and
//! reading the same outputs. This is the contract the attack-side
//! cone-of-influence miter reduction rests on.

use gshe_logic::{GeneratorConfig, NetlistGenerator, NodeId, NodeKind, PatternBlock, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cone_evaluation_is_bit_identical_to_full_netlist(
        inputs in 2usize..12,
        outputs in 2usize..8,
        gates in 8usize..150,
        netlist_seed in 0u64..10_000,
        subset_mask in 1u64..200,
        block_seed in 0u64..10_000,
    ) {
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("prop", inputs, outputs, gates).with_seed(netlist_seed),
        )
        .unwrap()
        .generate();

        // An arbitrary nonempty output subset, chosen by mask bits.
        let full_outs = nl.outputs();
        let mut roots: Vec<(usize, NodeId)> = full_outs
            .iter()
            .copied()
            .enumerate()
            .filter(|(k, _)| (subset_mask >> (k % 8)) & 1 == 1)
            .collect();
        if roots.is_empty() {
            roots.push((0, full_outs[0]));
        }
        let root_ids: Vec<NodeId> = roots.iter().map(|&(_, id)| id).collect();

        let (cone, map) = nl.cone_of(&root_ids);

        // Structural sanity: the cone holds every root, never grows, and
        // its inputs are genuine inputs of the full netlist.
        prop_assert!(cone.len() <= nl.len());
        prop_assert_eq!(map.full_len(), nl.len());
        prop_assert_eq!(map.cone_len(), cone.len());
        for &(_, root) in &roots {
            prop_assert!(map.contains(root));
        }
        // Full-netlist ordinal of each surviving input, for lane gathering.
        let gather: Vec<usize> = cone
            .inputs()
            .iter()
            .map(|&ci| {
                let full_id = map.to_full(ci);
                prop_assert!(matches!(nl.kind(full_id), NodeKind::Input));
                Ok(nl
                    .inputs()
                    .iter()
                    .position(|&f| f == full_id)
                    .expect("cone input maps back to a full input"))
            })
            .collect::<Result<_, _>>()?;

        let mut full_sim = Simulator::new(&nl);
        let mut cone_sim = Simulator::new(&cone);
        let mut rng = StdRng::seed_from_u64(block_seed);
        for _ in 0..4 {
            let block = PatternBlock::random(nl.inputs().len(), &mut rng);
            let full_out = full_sim.run(&block).unwrap();
            let cone_block = PatternBlock {
                lanes: gather.iter().map(|&k| block.lanes[k]).collect(),
                count: block.count,
            };
            let cone_out = cone_sim.run(&cone_block).unwrap();
            prop_assert_eq!(cone_out.len(), roots.len());
            for (cone_pos, &(full_pos, _)) in roots.iter().enumerate() {
                prop_assert_eq!(
                    cone_out[cone_pos],
                    full_out[full_pos],
                    "output {} (cone position {})",
                    full_pos,
                    cone_pos
                );
            }
        }
    }

    /// Taking the cone of *all* outputs reproduces the reachable part of
    /// the netlist exactly: same evaluation on every output.
    #[test]
    fn cone_of_all_outputs_is_equivalent(
        inputs in 2usize..10,
        outputs in 1usize..6,
        gates in 8usize..100,
        netlist_seed in 0u64..10_000,
        block_seed in 0u64..10_000,
    ) {
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("prop", inputs, outputs, gates).with_seed(netlist_seed),
        )
        .unwrap()
        .generate();
        let (cone, map) = nl.cone_of(nl.outputs());
        let gather: Vec<usize> = cone
            .inputs()
            .iter()
            .map(|&ci| {
                nl.inputs()
                    .iter()
                    .position(|&f| f == map.to_full(ci))
                    .expect("cone input maps back to a full input")
            })
            .collect();
        let mut full_sim = Simulator::new(&nl);
        let mut cone_sim = Simulator::new(&cone);
        let mut rng = StdRng::seed_from_u64(block_seed);
        for _ in 0..4 {
            let block = PatternBlock::random(nl.inputs().len(), &mut rng);
            let cone_block = PatternBlock {
                lanes: gather.iter().map(|&k| block.lanes[k]).collect(),
                count: block.count,
            };
            prop_assert_eq!(
                cone_sim.run(&cone_block).unwrap(),
                full_sim.run(&block).unwrap()
            );
        }
    }
}
