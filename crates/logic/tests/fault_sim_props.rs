//! Property tests for the noise-aware evaluation engine.
//!
//! Two contracts keep the four interpreters collapsed onto one core
//! honest: (1) a zero-rate [`FaultSimulator`] is *bit-identical* to the
//! plain [`Simulator`] on arbitrary generated netlists (so the engine can
//! stand in for every deterministic path), and (2) observed flip
//! frequencies track the configured per-node rates (so the stochastic
//! defense measures what the spec says it measures).

use gshe_logic::noise::bernoulli_mask;
use gshe_logic::{
    Bf2, ErrorProfile, FaultSimulator, GeneratorConfig, NetlistBuilder, NetlistGenerator,
    PatternBlock, Simulator,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All rates = 0 ⇒ the fault engine matches the plain bit-parallel
    /// simulator bit-for-bit, block-path and scalar-path alike, on
    /// generated netlists of arbitrary shape.
    #[test]
    fn zero_rate_engine_is_bit_identical_to_simulator(
        inputs in 2usize..12,
        outputs in 1usize..6,
        gates in 8usize..150,
        netlist_seed in 0u64..10_000,
        block_seed in 0u64..10_000,
    ) {
        let nl = NetlistGenerator::new(
            GeneratorConfig::new("prop", inputs, outputs, gates).with_seed(netlist_seed),
        )
        .unwrap()
        .generate();
        let mut plain = Simulator::new(&nl);
        let mut engine = FaultSimulator::new(&nl, ErrorProfile::zero(nl.len()), block_seed);
        let mut rng = StdRng::seed_from_u64(block_seed);
        for _ in 0..4 {
            let block = PatternBlock::random(nl.inputs().len(), &mut rng);
            let expected = plain.run(&block).unwrap();
            prop_assert_eq!(&engine.run(&block).unwrap(), &expected);
            // Per-node values agree too — the whole sweep is identical,
            // not just the outputs.
            prop_assert_eq!(engine.node_values(), plain.node_values());
            // Scalar path agrees with the scalar interpreter.
            let k = (block_seed % 64) as usize;
            let pattern = block.pattern(k);
            prop_assert_eq!(engine.run_scalar(&pattern).unwrap(), nl.evaluate(&pattern));
        }
    }

    /// The Bernoulli mask builder is unbiased across the representable
    /// rate range (quantization error ≤ 2⁻³²).
    #[test]
    fn bernoulli_mask_frequency_tracks_rate(rate in 0.01f64..0.99, seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let blocks = 2_000u64;
        let ones: u64 = (0..blocks)
            .map(|_| bernoulli_mask(&mut rng, rate).count_ones() as u64)
            .sum();
        let freq = ones as f64 / (blocks * 64) as f64;
        // 128k samples: |freq − p| stays within ~4σ ≈ 4·√(p(1−p)/n) < 0.012.
        prop_assert!((freq - rate).abs() < 0.012, "rate {} observed {}", rate, freq);
    }
}

/// Seeded statistical check on the *engine*: a noisy node's observed flip
/// frequency at the outputs tracks its configured rate, per node, within
/// binomial tolerance.
#[test]
fn observed_flip_frequency_tracks_per_node_rates() {
    // Two independent buffer paths x→s, y→c with different rates: each
    // output flips exactly when its own node's fault fires.
    let mut b = NetlistBuilder::new("probe");
    let x = b.input("x");
    let y = b.input("y");
    let s = b.gate2("s", Bf2::BUF_A, x, y); // s = x
    let c = b.gate2("c", Bf2::BUF_B, x, y); // c = y
    b.output(s);
    b.output(c);
    let nl = b.finish().unwrap();

    let mut profile = ErrorProfile::zero(nl.len());
    profile.set(s, 0.05);
    profile.set(c, 0.3);
    let mut engine = FaultSimulator::new(&nl, profile, 42);

    let mut clean = Simulator::new(&nl);
    let mut rng = StdRng::seed_from_u64(7);
    let blocks = 1_500u64;
    let mut flips = [0u64; 2];
    for _ in 0..blocks {
        let block = PatternBlock::random(2, &mut rng);
        let noisy = engine.run(&block).unwrap();
        let reference = clean.run(&block).unwrap();
        for (o, flip_count) in flips.iter_mut().enumerate() {
            *flip_count += (noisy[o] ^ reference[o]).count_ones() as u64;
        }
    }
    let n = (blocks * 64) as f64;
    let freq_s = flips[0] as f64 / n;
    let freq_c = flips[1] as f64 / n;
    assert!(
        (freq_s - 0.05).abs() < 0.005,
        "s: configured 0.05, got {freq_s}"
    );
    assert!(
        (freq_c - 0.3).abs() < 0.01,
        "c: configured 0.30, got {freq_c}"
    );
}

/// The scalar path obeys the same per-node rates (one `gen_bool` per noisy
/// node per pattern).
#[test]
fn scalar_flip_frequency_tracks_rate() {
    let mut b = NetlistBuilder::new("probe");
    let x = b.input("x");
    let g = b.gate1("g", gshe_logic::Bf1::Buf, x);
    b.output(g);
    let nl = b.finish().unwrap();
    let mut profile = ErrorProfile::zero(nl.len());
    profile.set(g, 0.1);
    let mut engine = FaultSimulator::new(&nl, profile, 5);
    let trials = 20_000;
    let mut flips = 0u32;
    for _ in 0..trials {
        if engine.run_scalar(&[true]).unwrap() != vec![true] {
            flips += 1;
        }
    }
    let freq = f64::from(flips) / f64::from(trials);
    assert!((freq - 0.1).abs() < 0.01, "configured 0.1, got {freq}");
}
