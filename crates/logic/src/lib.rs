//! # gshe-logic
//!
//! Gate-level netlist substrate for the DATE 2018 GSHE hardware-security
//! reproduction: the intermediate representation, two-input Boolean function
//! algebra ([`Bf2`]), an ISCAS `.bench` parser/writer, fast (bit-parallel)
//! simulation, sequential-to-combinational scan preprocessing, and the
//! seeded synthetic benchmark generator that stands in for the paper's
//! ISCAS-85 / MCNC / ITC-99 / EPFL / IBM superblue suites (Table III).
//!
//! ```
//! use gshe_logic::{Bf2, NetlistBuilder};
//!
//! let mut b = NetlistBuilder::new("half_adder");
//! let a = b.input("a");
//! let c = b.input("b");
//! let sum = b.gate2("sum", Bf2::XOR, a, c);
//! let carry = b.gate2("carry", Bf2::AND, a, c);
//! b.output(sum);
//! b.output(carry);
//! let nl = b.finish().unwrap();
//! assert_eq!(nl.evaluate(&[true, true]), vec![false, true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aiger;
pub mod bench_format;
pub mod bf2;
pub mod builder;
pub mod error;
pub mod generator;
pub mod netlist;
pub mod noise;
pub mod opt;
pub mod seq;
pub mod sim;
pub mod stats;
pub mod suites;

pub use aiger::{parse_aag, write_aag};
pub use bench_format::{parse_bench, write_bench};
pub use bf2::{Bf1, Bf2};
pub use builder::NetlistBuilder;
pub use error::LogicError;
pub use generator::{GeneratorConfig, NetlistGenerator, Topology, LOCAL_WINDOW};
pub use netlist::{FanoutCsr, IdMap, Netlist, Node, NodeId, NodeKind, NodeRef};
pub use noise::{bernoulli_mask, ErrorProfile, FaultSimulator};
pub use opt::{optimize, optimize_protected, OptReport};
pub use seq::scan_preprocess;
pub use sim::{PatternBlock, Simulator};
pub use stats::NetlistStats;
pub use suites::{
    benchmark, benchmark_scaled, benchmark_scaled_with, benchmark_with, BenchmarkSpec, TABLE_III,
};
