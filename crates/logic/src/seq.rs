//! Sequential-circuit semantics and scan preprocessing.
//!
//! The paper's SAT attacks operate on combinational cores: *"the inputs
//! (and outputs) of all flip-flops become primary outputs (and inputs);
//! thereafter, the flip-flops are removed"* (Sec. V-A), which mimics
//! scan-chain access. [`scan_preprocess`] performs exactly this cut;
//! [`SequentialCircuit`] retains the flip-flop bindings so designs can also
//! be simulated clock by clock (used to validate that the cut preserves
//! per-cycle behaviour).

use crate::bench_format::{parse_bench_detailed, ParsedBench};
use crate::error::LogicError;
use crate::netlist::Netlist;

/// A sequential design: a combinational core plus DFF feedback bindings.
///
/// Pseudo input `real_inputs + k` (the DFF `Q` pin) is fed each cycle from
/// pseudo output `real_outputs + k` (the DFF `D` pin) of the previous cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequentialCircuit {
    core: Netlist,
    real_inputs: usize,
    real_outputs: usize,
    state: Vec<bool>,
}

impl SequentialCircuit {
    /// Parses a `.bench` design, retaining flip-flop semantics.
    ///
    /// # Errors
    ///
    /// Propagates parser errors (see
    /// [`crate::bench_format::parse_bench_detailed`]).
    pub fn parse(text: &str) -> Result<Self, LogicError> {
        let ParsedBench {
            netlist,
            real_inputs,
            real_outputs,
            dff_count,
        } = parse_bench_detailed(text)?;
        Ok(SequentialCircuit {
            core: netlist,
            real_inputs,
            real_outputs,
            state: vec![false; dff_count],
        })
    }

    /// The combinational core (scan-preprocessed view).
    pub fn core(&self) -> &Netlist {
        &self.core
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.state.len()
    }

    /// Number of genuine primary inputs.
    pub fn real_inputs(&self) -> usize {
        self.real_inputs
    }

    /// Number of genuine primary outputs.
    pub fn real_outputs(&self) -> usize {
        self.real_outputs
    }

    /// Current flip-flop state.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Resets all flip-flops to 0.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = false);
    }

    /// Loads an explicit flip-flop state (scan-in).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] on length mismatch.
    pub fn scan_in(&mut self, state: &[bool]) -> Result<(), LogicError> {
        if state.len() != self.state.len() {
            return Err(LogicError::InputCountMismatch {
                expected: self.state.len(),
                got: state.len(),
            });
        }
        self.state.copy_from_slice(state);
        Ok(())
    }

    /// Applies one clock cycle: evaluates the core on `inputs` plus the
    /// current state, updates the flip-flops, and returns the real primary
    /// outputs.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] if `inputs` does not match
    /// the number of real primary inputs.
    pub fn step(&mut self, inputs: &[bool]) -> Result<Vec<bool>, LogicError> {
        if inputs.len() != self.real_inputs {
            return Err(LogicError::InputCountMismatch {
                expected: self.real_inputs,
                got: inputs.len(),
            });
        }
        let mut full = Vec::with_capacity(self.real_inputs + self.state.len());
        full.extend_from_slice(inputs);
        full.extend_from_slice(&self.state);
        let out = self.core.try_evaluate(&full)?;
        let (real, next_state) = out.split_at(self.real_outputs);
        self.state.copy_from_slice(next_state);
        Ok(real.to_vec())
    }
}

/// Scan preprocessing: parses a (possibly sequential) `.bench` design and
/// returns its combinational core with DFFs cut into pseudo-PI/PO — the
/// exact transformation the paper applies to the IBM superblue circuits
/// before SAT attacks.
///
/// # Errors
///
/// Propagates parser errors.
pub fn scan_preprocess(text: &str) -> Result<Netlist, LogicError> {
    SequentialCircuit::parse(text).map(|c| c.core)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = "\
# toggle
INPUT(en)
OUTPUT(y)
q = DFF(d)
d = XOR(en, q)
y = BUFF(q)
";

    #[test]
    fn toggle_flip_flop_behaviour() {
        let mut c = SequentialCircuit::parse(TOGGLE).unwrap();
        assert_eq!(c.dff_count(), 1);
        // Enabled: q toggles every cycle; y shows the *pre-clock* state.
        let y0 = c.step(&[true]).unwrap();
        assert_eq!(y0, vec![false]);
        let y1 = c.step(&[true]).unwrap();
        assert_eq!(y1, vec![true]);
        let y2 = c.step(&[true]).unwrap();
        assert_eq!(y2, vec![false]);
        // Disabled: state holds.
        let y3 = c.step(&[false]).unwrap();
        assert_eq!(y3, vec![true]);
        let y4 = c.step(&[false]).unwrap();
        assert_eq!(y4, vec![true]);
    }

    #[test]
    fn scan_in_sets_state() {
        let mut c = SequentialCircuit::parse(TOGGLE).unwrap();
        c.scan_in(&[true]).unwrap();
        assert_eq!(c.step(&[false]).unwrap(), vec![true]);
        c.reset();
        assert_eq!(c.step(&[false]).unwrap(), vec![false]);
    }

    #[test]
    fn scan_preprocess_exposes_dff_boundary() {
        let core = scan_preprocess(TOGGLE).unwrap();
        assert_eq!(core.inputs().len(), 2); // en + q
        assert_eq!(core.outputs().len(), 2); // y + d
    }

    #[test]
    fn core_matches_manual_unrolling() {
        // One cycle of the sequential circuit equals one evaluation of the
        // cut core with the state appended.
        let mut c = SequentialCircuit::parse(TOGGLE).unwrap();
        let core = c.core().clone();
        let out_core = core.evaluate(&[true, false]); // en=1, q=0
        let out_seq = c.step(&[true]).unwrap();
        assert_eq!(out_seq[0], out_core[0]);
        assert_eq!(c.state()[0], out_core[1]);
    }

    #[test]
    fn scan_in_rejects_wrong_length() {
        let mut c = SequentialCircuit::parse(TOGGLE).unwrap();
        assert!(c.scan_in(&[true, false]).is_err());
    }

    #[test]
    fn step_rejects_wrong_arity() {
        let mut c = SequentialCircuit::parse(TOGGLE).unwrap();
        assert!(c.step(&[true, true]).is_err());
    }

    #[test]
    fn combinational_design_has_no_state() {
        let c = SequentialCircuit::parse(crate::bench_format::C17_BENCH).unwrap();
        assert_eq!(c.dff_count(), 0);
        assert_eq!(c.real_inputs(), 5);
    }
}
