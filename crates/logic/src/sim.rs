//! Bit-parallel netlist simulation.
//!
//! [`Simulator`] evaluates 64 input patterns per pass by packing one pattern
//! per bit of a `u64`. The SAT-attack oracle, the stochastic-defense
//! experiments, and functional-equivalence spot checks all run on top of
//! this engine.

use crate::error::LogicError;
use crate::netlist::Netlist;
use rand::Rng;

/// Obs counter: nodes evaluated by simulation sweeps (gate throughput —
/// divide by wall clock for a gates/sec figure).
pub(crate) const NODES_EVALUATED: &str = "logic.nodes_evaluated";

/// A block of up to 64 input patterns, one per bit lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternBlock {
    /// One `u64` per primary input; bit `k` is the input's value in
    /// pattern `k`.
    pub lanes: Vec<u64>,
    /// Number of valid patterns (1..=64).
    pub count: usize,
}

impl PatternBlock {
    /// Packs explicit patterns (`patterns[k][i]` = input `i` of pattern `k`).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 patterns are supplied, if zero patterns are
    /// supplied, or if rows have inconsistent widths.
    pub fn from_patterns(patterns: &[Vec<bool>]) -> Self {
        assert!(
            !patterns.is_empty() && patterns.len() <= 64,
            "need 1..=64 patterns"
        );
        let width = patterns[0].len();
        let mut lanes = vec![0u64; width];
        for (k, row) in patterns.iter().enumerate() {
            assert_eq!(row.len(), width, "ragged pattern rows");
            for (i, &v) in row.iter().enumerate() {
                if v {
                    lanes[i] |= 1 << k;
                }
            }
        }
        PatternBlock {
            lanes,
            count: patterns.len(),
        }
    }

    /// Draws 64 uniformly random patterns for `num_inputs` inputs.
    pub fn random<R: Rng + ?Sized>(num_inputs: usize, rng: &mut R) -> Self {
        PatternBlock {
            lanes: (0..num_inputs).map(|_| rng.gen()).collect(),
            count: 64,
        }
    }

    /// Draws `count` uniformly random patterns for `num_inputs` inputs
    /// (partial blocks let block-capable oracles answer an arbitrary
    /// sample budget, e.g. AppSAT's reinforcement rounds).
    ///
    /// # Panics
    ///
    /// Panics if `count` is outside `1..=64`.
    pub fn random_n<R: Rng + ?Sized>(num_inputs: usize, count: usize, rng: &mut R) -> Self {
        assert!((1..=64).contains(&count), "need 1..=64 patterns");
        PatternBlock {
            lanes: (0..num_inputs).map(|_| rng.gen()).collect(),
            count,
        }
    }

    /// Extracts pattern `k` as a `Vec<bool>`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.count`.
    pub fn pattern(&self, k: usize) -> Vec<bool> {
        assert!(k < self.count, "pattern index out of range");
        self.lanes
            .iter()
            .map(|&lane| (lane >> k) & 1 == 1)
            .collect()
    }

    /// Mask with one bit set per valid pattern.
    pub fn valid_mask(&self) -> u64 {
        if self.count == 64 {
            !0
        } else {
            (1u64 << self.count) - 1
        }
    }
}

/// Bit-parallel simulator bound to one netlist.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    /// Scratch buffer reused across calls.
    values: Vec<u64>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `netlist`.
    pub fn new(netlist: &'a Netlist) -> Self {
        Simulator {
            values: vec![0; netlist.len()],
            netlist,
        }
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Simulates a block of patterns; returns one `u64` per primary output
    /// (bit `k` = output value under pattern `k`).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] if the block width does
    /// not match the number of primary inputs.
    pub fn run(&mut self, block: &PatternBlock) -> Result<Vec<u64>, LogicError> {
        run_with_scratch(self.netlist, &mut self.values, block)
    }

    /// Like [`Simulator::run`], but clears the bits of invalid lanes
    /// (`k >= block.count`), so results compare bit-for-bit with a
    /// pattern-at-a-time evaluation. Block-capable oracles answer through
    /// this.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] if the block width does
    /// not match the number of primary inputs.
    pub fn run_masked(&mut self, block: &PatternBlock) -> Result<Vec<u64>, LogicError> {
        let mut lanes = self.run(block)?;
        let mask = block.valid_mask();
        for lane in &mut lanes {
            *lane &= mask;
        }
        Ok(lanes)
    }

    /// Evaluates one pattern through lane 0 of the bit-parallel core,
    /// reusing the simulator's scratch buffer — the allocation-free scalar
    /// path for oracles answering pattern-at-a-time queries.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] on arity mismatch.
    pub fn run_scalar(&mut self, inputs: &[bool]) -> Result<Vec<bool>, LogicError> {
        run_scalar_with_scratch(self.netlist, &mut self.values, inputs)
    }

    /// Values of *all* nodes from the most recent [`Simulator::run`] call.
    pub fn node_values(&self) -> &[u64] {
        &self.values
    }
}

/// One bit-parallel pass of `netlist` over `block` using a caller-owned
/// scratch buffer (resized to fit). This is [`Simulator::run`]'s engine,
/// exposed for owners whose netlist changes *identity* but not size across
/// calls — e.g. a key-rotating oracle that re-resolves per epoch — so every
/// pass reuses one allocation.
///
/// # Errors
///
/// Returns [`LogicError::InputCountMismatch`] if the block width does not
/// match the number of primary inputs.
pub fn run_with_scratch(
    netlist: &Netlist,
    scratch: &mut Vec<u64>,
    block: &PatternBlock,
) -> Result<Vec<u64>, LogicError> {
    let mut out = Vec::with_capacity(netlist.outputs().len());
    run_with_scratch_into(netlist, scratch, block, &mut out)?;
    Ok(out)
}

/// Like [`run_with_scratch`], but writes the output lanes into a
/// caller-owned buffer (cleared and refilled), so a steady-state caller —
/// e.g. a rotating oracle answering epoch segments — performs **zero**
/// allocations per pass.
///
/// # Errors
///
/// Returns [`LogicError::InputCountMismatch`] on arity mismatch (leaving
/// `out` cleared).
pub fn run_with_scratch_into(
    netlist: &Netlist,
    scratch: &mut Vec<u64>,
    block: &PatternBlock,
    out: &mut Vec<u64>,
) -> Result<(), LogicError> {
    out.clear();
    if block.lanes.len() != netlist.inputs().len() {
        return Err(LogicError::InputCountMismatch {
            expected: netlist.inputs().len(),
            got: block.lanes.len(),
        });
    }
    scratch.resize(netlist.len(), 0);
    netlist.sweep_lanes(scratch, &block.lanes);
    gshe_obs::count(NODES_EVALUATED, netlist.len() as u64);
    out.extend(netlist.outputs().iter().map(|o| scratch[o.index()]));
    Ok(())
}

/// Scalar sibling of [`run_with_scratch`]: evaluates one pattern through
/// lane 0 of the shared gate core with a caller-owned buffer, so repeated
/// scalar queries (the SAT-attack DIP loop) allocate nothing per call
/// beyond the output vector.
///
/// # Errors
///
/// Returns [`LogicError::InputCountMismatch`] on arity mismatch.
pub fn run_scalar_with_scratch(
    netlist: &Netlist,
    scratch: &mut Vec<u64>,
    inputs: &[bool],
) -> Result<Vec<bool>, LogicError> {
    if inputs.len() != netlist.inputs().len() {
        return Err(LogicError::InputCountMismatch {
            expected: netlist.inputs().len(),
            got: inputs.len(),
        });
    }
    scratch.resize(netlist.len(), 0);
    for i in 0..netlist.len() {
        let v = netlist.eval_node_lanes(i, scratch, |k| inputs[k] as u64);
        scratch[i] = v;
    }
    gshe_obs::count(NODES_EVALUATED, netlist.len() as u64);
    Ok(netlist
        .outputs()
        .iter()
        .map(|o| scratch[o.index()] & 1 == 1)
        .collect())
}

/// Estimates whether two netlists with identical interfaces are functionally
/// equivalent by simulating `blocks` × 64 random patterns. Returns the first
/// differing input pattern, or `None` if none was found.
///
/// This is a *falsifier*, not a prover — the SAT-based miter in
/// `gshe-attacks` provides the complete check.
///
/// # Errors
///
/// Returns [`LogicError::InputCountMismatch`] if the interfaces differ.
pub fn random_equivalence_check<R: Rng + ?Sized>(
    a: &Netlist,
    b: &Netlist,
    blocks: usize,
    rng: &mut R,
) -> Result<Option<Vec<bool>>, LogicError> {
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return Err(LogicError::InputCountMismatch {
            expected: a.inputs().len(),
            got: b.inputs().len(),
        });
    }
    let mut sim_a = Simulator::new(a);
    let mut sim_b = Simulator::new(b);
    for _ in 0..blocks {
        let block = PatternBlock::random(a.inputs().len(), rng);
        let out_a = sim_a.run(&block)?;
        let out_b = sim_b.run(&block)?;
        for (ya, yb) in out_a.iter().zip(&out_b) {
            let diff = (ya ^ yb) & block.valid_mask();
            if diff != 0 {
                let k = diff.trailing_zeros() as usize;
                return Ok(Some(block.pattern(k)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf2::Bf2;
    use crate::builder::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adder() -> Netlist {
        let mut b = NetlistBuilder::new("fa");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.gate2("s", Bf2::XOR, x, y);
        let c = b.gate2("c", Bf2::AND, x, y);
        b.output(s);
        b.output(c);
        b.finish().unwrap()
    }

    #[test]
    fn block_round_trip() {
        let patterns = vec![vec![true, false], vec![false, true], vec![true, true]];
        let block = PatternBlock::from_patterns(&patterns);
        assert_eq!(block.count, 3);
        for (k, p) in patterns.iter().enumerate() {
            assert_eq!(&block.pattern(k), p);
        }
        assert_eq!(block.valid_mask(), 0b111);
    }

    #[test]
    fn parallel_sim_matches_scalar_eval() {
        let nl = adder();
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = Simulator::new(&nl);
        for _ in 0..10 {
            let block = PatternBlock::random(2, &mut rng);
            let outs = sim.run(&block).unwrap();
            for k in 0..block.count {
                let scalar = nl.evaluate(&block.pattern(k));
                for (o, &packed) in scalar.iter().zip(&outs) {
                    assert_eq!(*o, (packed >> k) & 1 == 1);
                }
            }
        }
    }

    #[test]
    fn run_scalar_matches_evaluate() {
        let nl = adder();
        let mut sim = Simulator::new(&nl);
        for p in 0..4u32 {
            let inputs: Vec<bool> = (0..2).map(|k| (p >> k) & 1 == 1).collect();
            assert_eq!(sim.run_scalar(&inputs).unwrap(), nl.evaluate(&inputs));
        }
        assert!(sim.run_scalar(&[true]).is_err(), "arity checked");
    }

    #[test]
    fn equivalence_check_accepts_identical() {
        let a = adder();
        let b = adder();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(random_equivalence_check(&a, &b, 8, &mut rng).unwrap(), None);
    }

    #[test]
    fn equivalence_check_finds_counterexample() {
        let a = adder();
        let mut b = adder();
        let s = b.find("s").unwrap();
        b.set_gate2_function(s, Bf2::XNOR).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cex = random_equivalence_check(&a, &b, 8, &mut rng)
            .unwrap()
            .expect("must differ");
        assert_ne!(a.evaluate(&cex), b.evaluate(&cex));
    }

    #[test]
    fn equivalence_check_rejects_interface_mismatch() {
        let a = adder();
        let mut builder = NetlistBuilder::new("other");
        let x = builder.input("x");
        builder.output(x);
        let b = builder.finish().unwrap();
        assert!(random_equivalence_check(&a, &b, 1, &mut StdRng::seed_from_u64(0)).is_err());
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn from_patterns_rejects_empty() {
        let _ = PatternBlock::from_patterns(&[]);
    }
}
