//! The sixteen two-input Boolean functions ([`Bf2`]) and the four one-input
//! functions ([`Bf1`]).
//!
//! `Bf2` wraps the 4-bit truth table of a function `f(a, b)`: bit
//! `i = a + 2 b` holds `f(a, b)`. All 16 values of the nibble are valid —
//! exactly the function space the GSHE primitive cloaks (paper Fig. 5).

use std::fmt;

/// A two-input Boolean function, represented by its 4-bit truth table.
///
/// Bit `i = a + 2 b` of the wrapped nibble is `f(a, b)`.
///
/// ```
/// use gshe_logic::Bf2;
///
/// assert!(Bf2::AND.eval(true, true));
/// assert!(!Bf2::AND.eval(true, false));
/// assert_eq!(Bf2::NAND, Bf2::AND.complement());
/// assert_eq!(Bf2::ALL.len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bf2(u8);

impl Bf2 {
    /// Constant 0.
    pub const FALSE: Bf2 = Bf2(0b0000);
    /// NOR: ¬(a ∨ b).
    pub const NOR: Bf2 = Bf2(0b0001);
    /// Inhibition a ∧ ¬b.
    pub const A_AND_NOT_B: Bf2 = Bf2(0b0010);
    /// ¬b (ignores a).
    pub const NOT_B: Bf2 = Bf2(0b0011);
    /// Inhibition ¬a ∧ b.
    pub const NOT_A_AND_B: Bf2 = Bf2(0b0100);
    /// ¬a (ignores b).
    pub const NOT_A: Bf2 = Bf2(0b0101);
    /// XOR: a ⊕ b.
    pub const XOR: Bf2 = Bf2(0b0110);
    /// NAND: ¬(a ∧ b).
    pub const NAND: Bf2 = Bf2(0b0111);
    /// AND: a ∧ b.
    pub const AND: Bf2 = Bf2(0b1000);
    /// XNOR: ¬(a ⊕ b).
    pub const XNOR: Bf2 = Bf2(0b1001);
    /// Buffer of a (ignores b).
    pub const BUF_A: Bf2 = Bf2(0b1010);
    /// Implication a ∨ ¬b.
    pub const A_OR_NOT_B: Bf2 = Bf2(0b1011);
    /// Buffer of b (ignores a).
    pub const BUF_B: Bf2 = Bf2(0b1100);
    /// Implication ¬a ∨ b.
    pub const NOT_A_OR_B: Bf2 = Bf2(0b1101);
    /// OR: a ∨ b.
    pub const OR: Bf2 = Bf2(0b1110);
    /// Constant 1.
    pub const TRUE: Bf2 = Bf2(0b1111);

    /// All 16 functions in truth-table order — the cloaking set of the GSHE
    /// primitive (Fig. 5).
    pub const ALL: [Bf2; 16] = [
        Bf2::FALSE,
        Bf2::NOR,
        Bf2::A_AND_NOT_B,
        Bf2::NOT_B,
        Bf2::NOT_A_AND_B,
        Bf2::NOT_A,
        Bf2::XOR,
        Bf2::NAND,
        Bf2::AND,
        Bf2::XNOR,
        Bf2::BUF_A,
        Bf2::A_OR_NOT_B,
        Bf2::BUF_B,
        Bf2::NOT_A_OR_B,
        Bf2::OR,
        Bf2::TRUE,
    ];

    /// Builds a function from its truth-table nibble.
    ///
    /// # Panics
    ///
    /// Panics if `tt > 15`.
    pub const fn from_truth_table(tt: u8) -> Bf2 {
        assert!(tt < 16, "truth table must be a nibble");
        Bf2(tt)
    }

    /// The 4-bit truth table (bit `a + 2b` = `f(a, b)`).
    pub const fn truth_table(self) -> u8 {
        self.0
    }

    /// Evaluates the function.
    pub const fn eval(self, a: bool, b: bool) -> bool {
        let idx = (a as u8) | ((b as u8) << 1);
        (self.0 >> idx) & 1 == 1
    }

    /// Bit-parallel evaluation over 64 packed input patterns.
    pub const fn eval_u64(self, a: u64, b: u64) -> u64 {
        // Shannon expansion over the four minterms of the truth table.
        let mut out = 0u64;
        if self.0 & 0b0001 != 0 {
            out |= !a & !b;
        }
        if self.0 & 0b0010 != 0 {
            out |= a & !b;
        }
        if self.0 & 0b0100 != 0 {
            out |= !a & b;
        }
        if self.0 & 0b1000 != 0 {
            out |= a & b;
        }
        out
    }

    /// The complement function ¬f.
    pub const fn complement(self) -> Bf2 {
        Bf2(!self.0 & 0x0F)
    }

    /// The function with its inputs swapped, `g(a, b) = f(b, a)`.
    pub const fn swap_inputs(self) -> Bf2 {
        // Swap bits 1 (a=1,b=0) and 2 (a=0,b=1).
        let fixed = self.0 & 0b1001;
        let b1 = (self.0 >> 1) & 1;
        let b2 = (self.0 >> 2) & 1;
        Bf2(fixed | (b2 << 1) | (b1 << 2))
    }

    /// `f(¬a, b)`.
    pub const fn negate_a(self) -> Bf2 {
        let mut out = 0u8;
        let mut idx = 0u8;
        while idx < 4 {
            let a = idx & 1;
            let b = (idx >> 1) & 1;
            let src = (1 - a) | (b << 1);
            out |= ((self.0 >> src) & 1) << idx;
            idx += 1;
        }
        Bf2(out)
    }

    /// `f(a, ¬b)`.
    pub const fn negate_b(self) -> Bf2 {
        let mut out = 0u8;
        let mut idx = 0u8;
        while idx < 4 {
            let a = idx & 1;
            let b = (idx >> 1) & 1;
            let src = a | ((1 - b) << 1);
            out |= ((self.0 >> src) & 1) << idx;
            idx += 1;
        }
        Bf2(out)
    }

    /// `true` if the output does not depend on input `a`.
    pub const fn ignores_a(self) -> bool {
        // f(0,b) == f(1,b) for both b.
        let f00 = self.0 & 1;
        let f10 = (self.0 >> 1) & 1;
        let f01 = (self.0 >> 2) & 1;
        let f11 = (self.0 >> 3) & 1;
        f00 == f10 && f01 == f11
    }

    /// `true` if the output does not depend on input `b`.
    pub const fn ignores_b(self) -> bool {
        let f00 = self.0 & 1;
        let f10 = (self.0 >> 1) & 1;
        let f01 = (self.0 >> 2) & 1;
        let f11 = (self.0 >> 3) & 1;
        f00 == f01 && f10 == f11
    }

    /// `true` for the constant functions.
    pub const fn is_constant(self) -> bool {
        self.0 == 0 || self.0 == 0x0F
    }

    /// `true` if the function genuinely depends on both inputs.
    pub const fn is_nondegenerate(self) -> bool {
        !self.ignores_a() && !self.ignores_b()
    }

    /// `true` if `f(a, b) = f(b, a)`.
    pub const fn is_symmetric(self) -> bool {
        self.swap_inputs().0 == self.0
    }

    /// Canonical mnemonic name.
    pub const fn name(self) -> &'static str {
        match self.0 {
            0b0000 => "FALSE",
            0b0001 => "NOR",
            0b0010 => "A_AND_NOT_B",
            0b0011 => "NOT_B",
            0b0100 => "NOT_A_AND_B",
            0b0101 => "NOT_A",
            0b0110 => "XOR",
            0b0111 => "NAND",
            0b1000 => "AND",
            0b1001 => "XNOR",
            0b1010 => "BUF_A",
            0b1011 => "A_OR_NOT_B",
            0b1100 => "BUF_B",
            0b1101 => "NOT_A_OR_B",
            0b1110 => "OR",
            _ => "TRUE",
        }
    }

    /// The standard-cell-like subset the synthetic benchmark generator
    /// draws from (the functions CMOS libraries actually ship).
    pub const STANDARD: [Bf2; 6] = [Bf2::NAND, Bf2::NOR, Bf2::AND, Bf2::OR, Bf2::XOR, Bf2::XNOR];
}

impl fmt::Display for Bf2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A one-input Boolean function (used by INV/BUF camouflaging cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bf1 {
    /// Identity.
    Buf,
    /// Inversion.
    Inv,
    /// Constant 0.
    Const0,
    /// Constant 1.
    Const1,
}

impl Bf1 {
    /// All four one-input functions.
    pub const ALL: [Bf1; 4] = [Bf1::Buf, Bf1::Inv, Bf1::Const0, Bf1::Const1];

    /// A stable 2-bit code for the function (the netlist arena packs this
    /// into a node's meta byte).
    pub const fn code(self) -> u8 {
        match self {
            Bf1::Buf => 0,
            Bf1::Inv => 1,
            Bf1::Const0 => 2,
            Bf1::Const1 => 3,
        }
    }

    /// Inverse of [`Bf1::code`].
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    pub const fn from_code(code: u8) -> Bf1 {
        match code {
            0 => Bf1::Buf,
            1 => Bf1::Inv,
            2 => Bf1::Const0,
            3 => Bf1::Const1,
            _ => panic!("Bf1 code must be 0..=3"),
        }
    }

    /// Evaluates the function.
    pub const fn eval(self, a: bool) -> bool {
        match self {
            Bf1::Buf => a,
            Bf1::Inv => !a,
            Bf1::Const0 => false,
            Bf1::Const1 => true,
        }
    }

    /// Bit-parallel evaluation over 64 packed patterns.
    pub const fn eval_u64(self, a: u64) -> u64 {
        match self {
            Bf1::Buf => a,
            Bf1::Inv => !a,
            Bf1::Const0 => 0,
            Bf1::Const1 => !0,
        }
    }

    /// The complement function.
    pub const fn complement(self) -> Bf1 {
        match self {
            Bf1::Buf => Bf1::Inv,
            Bf1::Inv => Bf1::Buf,
            Bf1::Const0 => Bf1::Const1,
            Bf1::Const1 => Bf1::Const0,
        }
    }

    /// Canonical mnemonic name.
    pub const fn name(self) -> &'static str {
        match self {
            Bf1::Buf => "BUF",
            Bf1::Inv => "NOT",
            Bf1::Const0 => "CONST0",
            Bf1::Const1 => "CONST1",
        }
    }

    /// Lifts the function to a two-input function acting on input `a`.
    pub const fn lift_a(self) -> Bf2 {
        match self {
            Bf1::Buf => Bf2::BUF_A,
            Bf1::Inv => Bf2::NOT_A,
            Bf1::Const0 => Bf2::FALSE,
            Bf1::Const1 => Bf2::TRUE,
        }
    }
}

impl fmt::Display for Bf1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sixteen_functions_are_distinct() {
        for (i, f) in Bf2::ALL.iter().enumerate() {
            assert_eq!(f.truth_table() as usize, i);
        }
    }

    #[test]
    fn named_constants_match_semantics() {
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(Bf2::AND.eval(a, b), a && b);
                assert_eq!(Bf2::OR.eval(a, b), a || b);
                assert_eq!(Bf2::NAND.eval(a, b), !(a && b));
                assert_eq!(Bf2::NOR.eval(a, b), !(a || b));
                assert_eq!(Bf2::XOR.eval(a, b), a ^ b);
                assert_eq!(Bf2::XNOR.eval(a, b), !(a ^ b));
                assert_eq!(Bf2::BUF_A.eval(a, b), a);
                assert_eq!(Bf2::NOT_A.eval(a, b), !a);
                assert_eq!(Bf2::BUF_B.eval(a, b), b);
                assert_eq!(Bf2::NOT_B.eval(a, b), !b);
                assert_eq!(Bf2::A_AND_NOT_B.eval(a, b), a && !b);
                assert_eq!(Bf2::NOT_A_AND_B.eval(a, b), !a && b);
                assert_eq!(Bf2::A_OR_NOT_B.eval(a, b), a || !b);
                assert_eq!(Bf2::NOT_A_OR_B.eval(a, b), !a || b);
                assert!(!Bf2::FALSE.eval(a, b));
                assert!(Bf2::TRUE.eval(a, b));
            }
        }
    }

    #[test]
    fn complement_is_involution() {
        for f in Bf2::ALL {
            assert_eq!(f.complement().complement(), f);
            for a in [false, true] {
                for b in [false, true] {
                    assert_eq!(f.complement().eval(a, b), !f.eval(a, b));
                }
            }
        }
    }

    #[test]
    fn swap_inputs_is_involution_and_correct() {
        for f in Bf2::ALL {
            let g = f.swap_inputs();
            assert_eq!(g.swap_inputs(), f);
            for a in [false, true] {
                for b in [false, true] {
                    assert_eq!(g.eval(a, b), f.eval(b, a));
                }
            }
        }
    }

    #[test]
    fn negate_a_and_b_are_correct() {
        for f in Bf2::ALL {
            for a in [false, true] {
                for b in [false, true] {
                    assert_eq!(f.negate_a().eval(a, b), f.eval(!a, b));
                    assert_eq!(f.negate_b().eval(a, b), f.eval(a, !b));
                }
            }
        }
    }

    #[test]
    fn eval_u64_matches_scalar() {
        // Pack the 4 input combinations into the low bits.
        let a = 0b0101u64; // a = 1,0,1,0 for patterns 0..4 (lsb first: 1,0,1,0)
        let b = 0b0011u64;
        for f in Bf2::ALL {
            let packed = f.eval_u64(a, b);
            for i in 0..4 {
                let ai = (a >> i) & 1 == 1;
                let bi = (b >> i) & 1 == 1;
                assert_eq!((packed >> i) & 1 == 1, f.eval(ai, bi), "{f} pattern {i}");
            }
        }
    }

    #[test]
    fn degeneracy_classification() {
        assert!(Bf2::BUF_A.ignores_b());
        assert!(Bf2::NOT_B.ignores_a());
        assert!(Bf2::FALSE.is_constant());
        assert!(Bf2::TRUE.is_constant());
        let nondegenerate: Vec<_> = Bf2::ALL.iter().filter(|f| f.is_nondegenerate()).collect();
        // 16 total − 2 constants − 4 single-input = 10 genuinely 2-input.
        assert_eq!(nondegenerate.len(), 10);
    }

    #[test]
    fn symmetry_classification() {
        for f in [Bf2::AND, Bf2::OR, Bf2::NAND, Bf2::NOR, Bf2::XOR, Bf2::XNOR] {
            assert!(f.is_symmetric(), "{f}");
        }
        for f in [Bf2::A_AND_NOT_B, Bf2::NOT_A_OR_B, Bf2::BUF_A, Bf2::NOT_B] {
            assert!(!f.is_symmetric(), "{f}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Bf2::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn bf1_semantics() {
        for a in [false, true] {
            assert_eq!(Bf1::Buf.eval(a), a);
            assert_eq!(Bf1::Inv.eval(a), !a);
            assert!(!Bf1::Const0.eval(a));
            assert!(Bf1::Const1.eval(a));
        }
        assert_eq!(Bf1::Buf.complement(), Bf1::Inv);
        assert_eq!(Bf1::Inv.eval_u64(0), !0u64);
    }

    #[test]
    fn bf1_code_round_trips() {
        for f in Bf1::ALL {
            assert_eq!(Bf1::from_code(f.code()), f);
        }
    }

    #[test]
    fn bf1_lift_matches() {
        for f in Bf1::ALL {
            for a in [false, true] {
                for b in [false, true] {
                    assert_eq!(f.lift_a().eval(a, b), f.eval(a));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "nibble")]
    fn from_truth_table_rejects_wide_values() {
        let _ = Bf2::from_truth_table(16);
    }
}
