//! Incremental netlist construction.

use crate::bf2::{Bf1, Bf2};
use crate::error::LogicError;
use crate::netlist::{Netlist, Node, NodeId, NodeKind};
use std::collections::HashSet;

/// Builds a [`Netlist`] node by node, maintaining topological order by
/// construction (a gate can only reference already-created nodes).
///
/// ```
/// use gshe_logic::{Bf2, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("mux");
/// let s = b.input("s");
/// let d0 = b.input("d0");
/// let d1 = b.input("d1");
/// let n0 = b.gate2("n0", Bf2::A_AND_NOT_B, d0, s);
/// let n1 = b.gate2("n1", Bf2::AND, d1, s);
/// let y = b.gate2("y", Bf2::OR, n0, n1);
/// b.output(y);
/// let mux = b.finish().unwrap();
/// assert_eq!(mux.evaluate(&[false, true, false]), vec![true]);
/// assert_eq!(mux.evaluate(&[true, true, false]), vec![false]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetlistBuilder {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    names: HashSet<String>,
    anon_counter: usize,
}

impl NetlistBuilder {
    /// Starts a new design called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    fn push(&mut self, kind: NodeKind, name: String) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.names.insert(name.clone());
        self.nodes.push(Node { kind, name });
        id
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let candidate = format!("{prefix}{}", self.anon_counter);
            self.anon_counter += 1;
            if !self.names.contains(&candidate) {
                return candidate;
            }
        }
    }

    /// Number of nodes created so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if nothing has been created yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Declares a primary input.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        assert!(!self.names.contains(&name), "duplicate signal `{name}`");
        let id = self.push(NodeKind::Input, name);
        self.inputs.push(id);
        id
    }

    /// Adds a constant driver.
    pub fn constant(&mut self, value: bool) -> NodeId {
        let name = self.fresh_name(if value { "const1_" } else { "const0_" });
        self.push(NodeKind::Const(value), name)
    }

    /// Adds a named two-input gate.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or forward references.
    pub fn gate2(&mut self, name: impl Into<String>, f: Bf2, a: NodeId, b: NodeId) -> NodeId {
        let name = name.into();
        assert!(!self.names.contains(&name), "duplicate signal `{name}`");
        assert!(
            a.index() < self.nodes.len() && b.index() < self.nodes.len(),
            "gate `{name}` references a node that does not exist yet"
        );
        self.push(NodeKind::Gate2 { f, a, b }, name)
    }

    /// Adds a named one-input gate.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or forward references.
    pub fn gate1(&mut self, name: impl Into<String>, f: Bf1, a: NodeId) -> NodeId {
        let name = name.into();
        assert!(!self.names.contains(&name), "duplicate signal `{name}`");
        assert!(
            a.index() < self.nodes.len(),
            "gate `{name}` references a missing node"
        );
        self.push(NodeKind::Gate1 { f, a }, name)
    }

    /// Adds an anonymous two-input gate (auto-named).
    pub fn gate2_auto(&mut self, f: Bf2, a: NodeId, b: NodeId) -> NodeId {
        let name = self.fresh_name("g");
        self.gate2(name, f, a, b)
    }

    /// Adds an anonymous one-input gate (auto-named).
    pub fn gate1_auto(&mut self, f: Bf1, a: NodeId) -> NodeId {
        let name = self.fresh_name("g");
        self.gate1(name, f, a)
    }

    /// Convenience inverter.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.gate1_auto(Bf1::Inv, a)
    }

    /// Reduces `ids` with the associative function `f` as a balanced binary
    /// tree (used to decompose n-ary `.bench` gates into two-input gates).
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty.
    pub fn reduce_tree(&mut self, f: Bf2, ids: &[NodeId]) -> NodeId {
        assert!(!ids.is_empty(), "cannot reduce an empty fanin list");
        let mut layer: Vec<NodeId> = ids.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate2_auto(f, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Marks `id` as a primary output.
    pub fn output(&mut self, id: NodeId) {
        self.outputs.push(id);
    }

    /// Finalizes and validates the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] if an invariant was violated (this
    /// indicates a builder bug; the builder enforces invariants as it goes).
    pub fn finish(self) -> Result<Netlist, LogicError> {
        Netlist::from_parts(self.name, self.nodes, self.inputs, self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_tree_matches_nary_and() {
        let mut b = NetlistBuilder::new("and8");
        let ins: Vec<NodeId> = (0..8).map(|i| b.input(format!("x{i}"))).collect();
        let root = b.reduce_tree(Bf2::AND, &ins);
        b.output(root);
        let nl = b.finish().unwrap();
        for pattern in 0..256u32 {
            let vals: Vec<bool> = (0..8).map(|i| (pattern >> i) & 1 == 1).collect();
            let expect = vals.iter().all(|&v| v);
            assert_eq!(nl.evaluate(&vals), vec![expect], "pattern {pattern:08b}");
        }
        // 8-input tree needs exactly 7 two-input gates.
        assert_eq!(nl.gate_count(), 7);
    }

    #[test]
    fn reduce_tree_single_node_is_identity() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        assert_eq!(b.reduce_tree(Bf2::OR, &[x]), x);
    }

    #[test]
    fn auto_names_do_not_collide_with_user_names() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("g0"); // claim the first auto name
        let g = b.gate1_auto(Bf1::Inv, x);
        b.output(g);
        let nl = b.finish().unwrap();
        assert_eq!(nl.evaluate(&[true]), vec![false]);
    }

    #[test]
    #[should_panic(expected = "duplicate signal")]
    fn duplicate_input_name_panics() {
        let mut b = NetlistBuilder::new("t");
        b.input("x");
        b.input("x");
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_reference_panics() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        b.gate2("g", Bf2::AND, x, NodeId(99));
    }

    #[test]
    fn not_inverts() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.not(x);
        b.output(y);
        let nl = b.finish().unwrap();
        assert_eq!(nl.evaluate(&[false]), vec![true]);
    }
}
