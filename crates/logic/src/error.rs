//! Error type for the logic crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing, or validating netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A gate referenced a signal that was never defined.
    UnknownSignal(String),
    /// A signal was defined more than once.
    DuplicateSignal(String),
    /// The netlist failed a structural invariant.
    Validation(String),
    /// An evaluation was invoked with the wrong number of input values.
    InputCountMismatch {
        /// Number of primary inputs the netlist has.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A combinational loop was detected.
    CombinationalLoop(String),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LogicError::UnknownSignal(s) => write!(f, "unknown signal `{s}`"),
            LogicError::DuplicateSignal(s) => write!(f, "signal `{s}` defined twice"),
            LogicError::Validation(s) => write!(f, "invalid netlist: {s}"),
            LogicError::InputCountMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            LogicError::CombinationalLoop(s) => {
                write!(f, "combinational loop through `{s}`")
            }
        }
    }
}

impl Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_subject() {
        assert!(LogicError::UnknownSignal("n42".into())
            .to_string()
            .contains("n42"));
        assert!(LogicError::Parse {
            line: 7,
            message: "bad".into()
        }
        .to_string()
        .contains('7'));
        let e = LogicError::InputCountMismatch {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('1'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<LogicError>();
    }
}
