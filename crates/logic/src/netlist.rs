//! The gate-level netlist intermediate representation.
//!
//! A [`Netlist`] is a DAG of nodes stored **in topological order**: every
//! gate's fanin indices are strictly smaller than the gate's own index. The
//! builder and parser enforce the invariant; [`Netlist::check`] re-validates
//! it, and all downstream passes (simulation, SAT encoding, timing) rely on
//! a single forward sweep being sufficient.
//!
//! # Arena storage
//!
//! Nodes live in parallel flat arrays (struct-of-arrays), not a
//! `Vec<Node>`:
//!
//! * `meta: Vec<u8>` — one packed byte per node. Bits 0–1 are the kind tag
//!   (input / constant / one-input gate / two-input gate); bits 2–5 carry
//!   the payload (constant value, [`Bf1`] code, or the [`Bf2`] truth-table
//!   nibble).
//! * `fanin_a`, `fanin_b: Vec<u32>` — fanin node indices. For an `Input`
//!   node, `fanin_a` stores the node's *input ordinal* (its position in
//!   [`Netlist::inputs`]), so evaluation sweeps index the pattern lanes
//!   directly instead of threading a counter.
//! * an interned [`NameTable`] — all signal names in one `String` with a
//!   span per node, out of the hot path entirely.
//!
//! The evaluation sweep is therefore a cache-linear walk over ~9 bytes per
//! node instead of pointer-chasing `String`-carrying structs — per-node
//! memory drops roughly an order of magnitude, which is what lets the
//! 856k-gate superblue `sb1` benchmark run unscaled (≈20 MB of arena
//! instead of ≈80 MB of node structs plus a heap allocation per name).
//!
//! The public accessors keep the old shape: [`Netlist::node`] returns a
//! by-value [`NodeRef`] (`.kind`, `.name`), [`Netlist::nodes`] iterates
//! them, and [`Node`] (kind + owned name) remains the construction type
//! consumed by [`Netlist::from_parts`].
//!
//! # Cone extraction
//!
//! [`Netlist::cone_of`] extracts the transitive fanin cone of a set of
//! roots as a standalone netlist plus an [`IdMap`] between the two id
//! spaces. The cone preserves relative topological order, keeps the
//! original primary-input order (restricted to the cone), and is
//! re-validated by [`Netlist::check`]. The SAT attack uses this to encode
//! cone-of-influence-restricted miters at superblue scale.

use crate::bf2::{Bf1, Bf2};
use crate::error::LogicError;
use std::collections::HashMap;
use std::fmt;

/// Index of a node within its netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The functional kind of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Primary input.
    Input,
    /// Constant driver.
    Const(bool),
    /// One-input gate.
    Gate1 {
        /// Function.
        f: Bf1,
        /// Fanin.
        a: NodeId,
    },
    /// Two-input gate.
    Gate2 {
        /// Function.
        f: Bf2,
        /// First fanin.
        a: NodeId,
        /// Second fanin.
        b: NodeId,
    },
}

impl NodeKind {
    /// Fanin node ids (0, 1 or 2 of them).
    pub fn fanins(&self) -> impl Iterator<Item = NodeId> + '_ {
        let (a, b) = match *self {
            NodeKind::Input | NodeKind::Const(_) => (None, None),
            NodeKind::Gate1 { a, .. } => (Some(a), None),
            NodeKind::Gate2 { a, b, .. } => (Some(a), Some(b)),
        };
        a.into_iter().chain(b)
    }

    /// `true` for `Gate1` and `Gate2`.
    pub const fn is_gate(&self) -> bool {
        matches!(self, NodeKind::Gate1 { .. } | NodeKind::Gate2 { .. })
    }

    /// The single gate-evaluation core shared by every interpreter —
    /// scalar [`Netlist::evaluate`], the bit-parallel
    /// [`crate::Simulator`], and the noise-aware
    /// [`crate::FaultSimulator`].
    ///
    /// Evaluates this node over 64 bit-packed lanes: `values` holds the
    /// already-computed lanes of earlier nodes (fanins are strictly
    /// earlier by the topological invariant), and `input` supplies the
    /// lane word for [`NodeKind::Input`] nodes (ignored otherwise). Scalar
    /// interpreters use lane 0 only; every operation is bitwise, so the
    /// unused lanes are free.
    ///
    /// Hot sweeps should prefer [`Netlist::eval_node_lanes`], which reads
    /// the packed arena directly instead of materializing a `NodeKind`.
    #[inline]
    pub fn eval_lanes(&self, values: &[u64], input: u64) -> u64 {
        match *self {
            NodeKind::Input => input,
            NodeKind::Const(c) => {
                if c {
                    !0
                } else {
                    0
                }
            }
            NodeKind::Gate1 { f, a } => f.eval_u64(values[a.index()]),
            NodeKind::Gate2 { f, a, b } => f.eval_u64(values[a.index()], values[b.index()]),
        }
    }
}

/// A single node: its kind plus a (unique) signal name. This is the
/// *construction* type consumed by [`Netlist::from_parts`]; inside a
/// [`Netlist`] nodes are packed into the flat arena and read back out as
/// [`NodeRef`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Functional kind.
    pub kind: NodeKind,
    /// Signal name (unique within the netlist).
    pub name: String,
}

/// A node viewed out of the arena: its kind (by value — `NodeKind` is
/// `Copy`) and its interned name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef<'a> {
    /// Functional kind.
    pub kind: NodeKind,
    /// Signal name (unique within the netlist).
    pub name: &'a str,
}

/// All signal names of a netlist interned into one buffer: name `i` is
/// `bytes[spans[i]..spans[i + 1]]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct NameTable {
    bytes: String,
    /// `n + 1` offsets into `bytes` (starts with 0).
    spans: Vec<u32>,
}

impl NameTable {
    fn with_capacity(n: usize) -> Self {
        let mut spans = Vec::with_capacity(n + 1);
        spans.push(0);
        NameTable {
            bytes: String::new(),
            spans,
        }
    }

    fn push(&mut self, name: &str) {
        self.bytes.push_str(name);
        self.spans.push(self.bytes.len() as u32);
    }

    fn get(&self, i: usize) -> &str {
        &self.bytes[self.spans[i] as usize..self.spans[i + 1] as usize]
    }
}

/// Kind tag in bits 0–1 of a node's `meta` byte.
const TAG_INPUT: u8 = 0b00;
const TAG_CONST: u8 = 0b01;
const TAG_GATE1: u8 = 0b10;
const TAG_GATE2: u8 = 0b11;
const TAG_MASK: u8 = 0b11;

/// A combinational gate-level netlist in topological order, stored as a
/// flat arena (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    /// Packed kind/function byte per node.
    meta: Vec<u8>,
    /// First fanin index per node; input ordinal for `Input` nodes.
    fanin_a: Vec<u32>,
    /// Second fanin index per node (`Gate2` only; 0 otherwise).
    fanin_b: Vec<u32>,
    names: NameTable,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

impl Netlist {
    /// Assembles a netlist from raw parts, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] if node order is not topological,
    /// names collide, outputs dangle, or the inputs list is not exactly the
    /// `Input` nodes in ascending id order.
    pub fn from_parts(
        name: impl Into<String>,
        nodes: Vec<Node>,
        inputs: Vec<NodeId>,
        outputs: Vec<NodeId>,
    ) -> Result<Self, LogicError> {
        let n = nodes.len();
        let mut meta = Vec::with_capacity(n);
        let mut fanin_a = Vec::with_capacity(n);
        let mut fanin_b = Vec::with_capacity(n);
        let mut names = NameTable::with_capacity(n);
        let mut ordinal = 0u32;
        for node in &nodes {
            let (m, a, b) = match node.kind {
                NodeKind::Input => {
                    let o = ordinal;
                    ordinal += 1;
                    (TAG_INPUT, o, 0)
                }
                NodeKind::Const(c) => (TAG_CONST | (c as u8) << 2, 0, 0),
                NodeKind::Gate1 { f, a } => (TAG_GATE1 | f.code() << 2, a.0, 0),
                NodeKind::Gate2 { f, a, b } => (TAG_GATE2 | f.truth_table() << 2, a.0, b.0),
            };
            meta.push(m);
            fanin_a.push(a);
            fanin_b.push(b);
            names.push(&node.name);
        }
        let nl = Netlist {
            name: name.into(),
            meta,
            fanin_a,
            fanin_b,
            names,
            inputs,
            outputs,
        };
        nl.check()?;
        Ok(nl)
    }

    /// Re-validates every structural invariant.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] describing the first violation.
    pub fn check(&self) -> Result<(), LogicError> {
        let n = self.len();
        let mut seen_names: HashMap<&str, usize> = HashMap::with_capacity(n);
        for i in 0..n {
            let name = self.names.get(i);
            if let Some(prev) = seen_names.insert(name, i) {
                return Err(LogicError::Validation(format!(
                    "name `{name}` used by nodes {prev} and {i}"
                )));
            }
            for fanin in self.fanins(NodeId(i as u32)) {
                if fanin.index() >= i {
                    return Err(LogicError::Validation(format!(
                        "node {i} (`{name}`) has non-topological fanin {fanin}"
                    )));
                }
            }
        }
        // The inputs list must be exactly the Input nodes in ascending id
        // order — the order every evaluation path feeds pattern values in.
        let mut pos = 0usize;
        for i in 0..n {
            if self.meta[i] & TAG_MASK == TAG_INPUT {
                match self.inputs.get(pos) {
                    Some(&id) if id.index() == i => {}
                    _ => {
                        return Err(LogicError::Validation(format!(
                            "Input node `{}` (node {i}) is not primary input {pos}; the \
                             inputs list must be the Input nodes in ascending id order",
                            self.names.get(i)
                        )))
                    }
                }
                if self.fanin_a[i] as usize != pos {
                    return Err(LogicError::Validation(format!(
                        "input ordinal corrupted at node {i}"
                    )));
                }
                pos += 1;
            }
        }
        if pos != self.inputs.len() {
            return Err(LogicError::Validation(format!(
                "{pos} Input nodes but {} listed as primary inputs",
                self.inputs.len()
            )));
        }
        for &id in &self.outputs {
            if id.index() >= n {
                return Err(LogicError::Validation(format!("output {id} out of range")));
            }
        }
        Ok(())
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, in topological order.
    pub fn nodes(&self) -> Nodes<'_> {
        Nodes {
            nl: self,
            range: 0..self.len(),
        }
    }

    /// Node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        NodeRef {
            kind: self.kind(id),
            name: self.names.get(id.index()),
        }
    }

    /// Functional kind of `id` (reconstructed from the packed arena).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        let i = id.index();
        let m = self.meta[i];
        match m & TAG_MASK {
            TAG_INPUT => NodeKind::Input,
            TAG_CONST => NodeKind::Const(m >> 2 != 0),
            TAG_GATE1 => NodeKind::Gate1 {
                f: Bf1::from_code(m >> 2),
                a: NodeId(self.fanin_a[i]),
            },
            _ => NodeKind::Gate2 {
                f: Bf2::from_truth_table(m >> 2),
                a: NodeId(self.fanin_a[i]),
                b: NodeId(self.fanin_b[i]),
            },
        }
    }

    /// Fanin node ids of `id` (0, 1 or 2 of them), straight off the arena.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fanins(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let i = id.index();
        let (a, b) = match self.meta[i] & TAG_MASK {
            TAG_GATE1 => (Some(NodeId(self.fanin_a[i])), None),
            TAG_GATE2 => (Some(NodeId(self.fanin_a[i])), Some(NodeId(self.fanin_b[i]))),
            _ => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// Evaluates node `i` over 64 bit-packed lanes directly from the packed
    /// arena — the cache-linear core every simulator sweep runs on.
    /// `values` holds the lanes of earlier nodes; `input` maps an input
    /// *ordinal* (position in [`Netlist::inputs`]) to its lane word.
    #[inline]
    pub fn eval_node_lanes(
        &self,
        i: usize,
        values: &[u64],
        input: impl FnOnce(usize) -> u64,
    ) -> u64 {
        let m = self.meta[i];
        match m & TAG_MASK {
            TAG_INPUT => input(self.fanin_a[i] as usize),
            TAG_CONST => {
                if m & 0b100 != 0 {
                    !0
                } else {
                    0
                }
            }
            TAG_GATE1 => Bf1::from_code(m >> 2).eval_u64(values[self.fanin_a[i] as usize]),
            _ => Bf2::from_truth_table(m >> 2).eval_u64(
                values[self.fanin_a[i] as usize],
                values[self.fanin_b[i] as usize],
            ),
        }
    }

    /// One full bit-parallel pass over the arena: fills `values[i]` with
    /// node `i`'s 64 lanes, feeding primary input `k` from
    /// `input_lanes[k]`. `values` must hold at least [`Netlist::len`]
    /// words; `input_lanes` one word per primary input.
    pub fn sweep_lanes(&self, values: &mut [u64], input_lanes: &[u64]) {
        debug_assert!(values.len() >= self.len());
        debug_assert_eq!(input_lanes.len(), self.inputs.len());
        for i in 0..self.len() {
            let v = self.eval_node_lanes(i, values, |k| input_lanes[k]);
            values[i] = v;
        }
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of nodes (inputs + constants + gates).
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// `true` if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Number of gate nodes (excludes inputs and constants).
    pub fn gate_count(&self) -> usize {
        self.meta.iter().filter(|&&m| m & 0b10 != 0).count()
    }

    /// Ids of all gate nodes, in topological order.
    pub fn gate_ids(&self) -> Vec<NodeId> {
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, &m)| m & 0b10 != 0)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Bytes held by the flat node arena (meta + fanin slots + interned
    /// names + port lists) — the number the sb1 smoke test bounds.
    pub fn arena_bytes(&self) -> usize {
        self.meta.len()
            + 4 * (self.fanin_a.len() + self.fanin_b.len())
            + self.names.bytes.len()
            + 4 * self.names.spans.len()
            + 4 * (self.inputs.len() + self.outputs.len())
    }

    /// Id of the node with signal name `name`, if any (linear scan; build a
    /// map via [`Netlist::name_map`] for repeated lookups).
    pub fn find(&self, name: &str) -> Option<NodeId> {
        (0..self.len())
            .position(|i| self.names.get(i) == name)
            .map(|i| NodeId(i as u32))
    }

    /// Name → id map for all signals.
    pub fn name_map(&self) -> HashMap<&str, NodeId> {
        (0..self.len())
            .map(|i| (self.names.get(i), NodeId(i as u32)))
            .collect()
    }

    /// Fanout adjacency: for each node, the ids of nodes it feeds.
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.len()];
        for i in 0..self.len() {
            for fanin in self.fanins(NodeId(i as u32)) {
                out[fanin.index()].push(NodeId(i as u32));
            }
        }
        out
    }

    /// Fanout adjacency in compressed-sparse-row form — two flat arrays
    /// instead of a `Vec` per node, built in two counting passes. This is
    /// the form reachability passes (cone-of-influence, fanout statistics)
    /// walk at superblue scale.
    pub fn fanout_csr(&self) -> FanoutCsr {
        let n = self.len();
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            for fanin in self.fanins(NodeId(i as u32)) {
                offsets[fanin.index() + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId(0); offsets[n] as usize];
        for i in 0..n {
            for fanin in self.fanins(NodeId(i as u32)) {
                let c = &mut cursor[fanin.index()];
                targets[*c as usize] = NodeId(i as u32);
                *c += 1;
            }
        }
        FanoutCsr { offsets, targets }
    }

    /// Logic level of every node (inputs/constants at level 0).
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.len()];
        for i in 0..self.len() {
            level[i] = self
                .fanins(NodeId(i as u32))
                .map(|f| level[f.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        level
    }

    /// Logic depth: the maximum level over all outputs.
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|o| levels[o.index()])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the netlist on one input assignment (values in
    /// `inputs()` order) and returns the output values in `outputs()` order.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.inputs().len()`; use
    /// [`Netlist::try_evaluate`] for fallible evaluation.
    pub fn evaluate(&self, values: &[bool]) -> Vec<bool> {
        self.try_evaluate(values).expect("input count mismatch")
    }

    /// Fallible single-pattern evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] on arity mismatch.
    pub fn try_evaluate(&self, values: &[bool]) -> Result<Vec<bool>, LogicError> {
        let all = self.evaluate_all(values)?;
        Ok(self.outputs.iter().map(|o| all[o.index()]).collect())
    }

    /// Evaluates every node; returns one value per node in topological
    /// order. Useful for fault-injection and probing experiments.
    ///
    /// Runs lane 0 of the shared bit-parallel gate core
    /// ([`Netlist::eval_node_lanes`]) so scalar and packed evaluation
    /// cannot drift apart.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] on arity mismatch.
    pub fn evaluate_all(&self, values: &[bool]) -> Result<Vec<bool>, LogicError> {
        if values.len() != self.inputs.len() {
            return Err(LogicError::InputCountMismatch {
                expected: self.inputs.len(),
                got: values.len(),
            });
        }
        let mut lanes = vec![0u64; self.len()];
        for i in 0..self.len() {
            let v = self.eval_node_lanes(i, &lanes, |k| values[k] as u64);
            lanes[i] = v;
        }
        Ok(lanes.iter().map(|&v| v & 1 == 1).collect())
    }

    /// Replaces the function of the two-input gate `id`.
    ///
    /// This is the primitive operation behind runtime polymorphism
    /// (Sec. V-C) and behind installing decoy functions during
    /// camouflaging.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] if `id` is not a `Gate2`.
    pub fn set_gate2_function(&mut self, id: NodeId, f: Bf2) -> Result<(), LogicError> {
        let i = id.index();
        if self.meta[i] & TAG_MASK != TAG_GATE2 {
            return Err(LogicError::Validation(format!(
                "node {id} is {:?}, not a two-input gate",
                self.kind(id)
            )));
        }
        self.meta[i] = TAG_GATE2 | f.truth_table() << 2;
        Ok(())
    }

    /// Replaces the function of the one-input gate `id` (keeping fanin `a`,
    /// which must match the existing fanin).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] if `id` is not a `Gate1` or the
    /// fanin does not match.
    pub fn set_gate1_function(&mut self, id: NodeId, f: Bf1, a: NodeId) -> Result<(), LogicError> {
        let i = id.index();
        if self.meta[i] & TAG_MASK != TAG_GATE1 || self.fanin_a[i] != a.0 {
            return Err(LogicError::Validation(format!(
                "node {id} is {:?}, not a one-input gate fed by {a}",
                self.kind(id)
            )));
        }
        self.meta[i] = TAG_GATE1 | f.code() << 2;
        Ok(())
    }

    /// A histogram of gate functions: `(function name, count)` sorted by
    /// descending count.
    pub fn function_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for &m in &self.meta {
            match m & TAG_MASK {
                TAG_GATE1 => *counts.entry(Bf1::from_code(m >> 2).name()).or_default() += 1,
                TAG_GATE2 => {
                    *counts
                        .entry(Bf2::from_truth_table(m >> 2).name())
                        .or_default() += 1
                }
                _ => {}
            }
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(y.0)));
        v
    }

    /// Ids of nodes in the transitive fanin cone of `root` (including
    /// `root`).
    pub fn fanin_cone(&self, root: NodeId) -> Vec<NodeId> {
        let marked = self.mark_cone(&[root]);
        marked
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Marks the transitive fanin cone of `roots` (backward DFS).
    fn mark_cone(&self, roots: &[NodeId]) -> Vec<bool> {
        let mut marked = vec![false; self.len()];
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if marked[id.index()] {
                continue;
            }
            marked[id.index()] = true;
            stack.extend(self.fanins(id));
        }
        marked
    }

    /// Extracts the transitive fanin cone of `roots` as a standalone
    /// netlist, plus the [`IdMap`] between the two id spaces.
    ///
    /// The cone keeps the full netlist's relative topological order, its
    /// primary inputs are the original inputs that lie in the cone (in
    /// original order), and its outputs are `roots` in the given order.
    /// The result is re-validated by [`Netlist::check`].
    ///
    /// # Panics
    ///
    /// Panics if any root id is out of range.
    pub fn cone_of(&self, roots: &[NodeId]) -> (Netlist, IdMap) {
        let n = self.len();
        let marked = self.mark_cone(roots);
        let cone_n = marked.iter().filter(|&&m| m).count();
        let mut forward = vec![u32::MAX; n];
        let mut back = Vec::with_capacity(cone_n);
        let mut meta = Vec::with_capacity(cone_n);
        let mut fanin_a = Vec::with_capacity(cone_n);
        let mut fanin_b = Vec::with_capacity(cone_n);
        let mut names = NameTable::with_capacity(cone_n);
        let mut inputs = Vec::new();
        for i in 0..n {
            if !marked[i] {
                continue;
            }
            let new_id = back.len() as u32;
            forward[i] = new_id;
            back.push(NodeId(i as u32));
            let m = self.meta[i];
            let (a, b) = match m & TAG_MASK {
                TAG_INPUT => {
                    inputs.push(NodeId(new_id));
                    (inputs.len() as u32 - 1, 0)
                }
                TAG_CONST => (0, 0),
                TAG_GATE1 => (forward[self.fanin_a[i] as usize], 0),
                _ => (
                    forward[self.fanin_a[i] as usize],
                    forward[self.fanin_b[i] as usize],
                ),
            };
            meta.push(m);
            fanin_a.push(a);
            fanin_b.push(b);
            names.push(self.names.get(i));
        }
        let outputs = roots.iter().map(|r| NodeId(forward[r.index()])).collect();
        let cone = Netlist {
            name: format!("{}_cone", self.name),
            meta,
            fanin_a,
            fanin_b,
            names,
            inputs,
            outputs,
        };
        cone.check()
            .expect("cone extraction preserves netlist invariants");
        (cone, IdMap { forward, back })
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, depth {}",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gate_count(),
            self.depth()
        )
    }
}

/// Iterator over a netlist's nodes as [`NodeRef`]s, in topological order.
#[derive(Debug, Clone)]
pub struct Nodes<'a> {
    nl: &'a Netlist,
    range: std::ops::Range<usize>,
}

impl<'a> Iterator for Nodes<'a> {
    type Item = NodeRef<'a>;

    fn next(&mut self) -> Option<NodeRef<'a>> {
        self.range.next().map(|i| self.nl.node(NodeId(i as u32)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for Nodes<'_> {}

impl DoubleEndedIterator for Nodes<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        self.range
            .next_back()
            .map(|i| self.nl.node(NodeId(i as u32)))
    }
}

/// Fanout adjacency in compressed-sparse-row form: the fanouts of node `i`
/// are `targets[offsets[i]..offsets[i + 1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutCsr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl FanoutCsr {
    /// The ids of the nodes `id` feeds.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of fanout edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }
}

/// Old-id ↔ new-id correspondence produced by [`Netlist::cone_of`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdMap {
    /// Full-netlist id → cone id (`u32::MAX` when outside the cone).
    forward: Vec<u32>,
    /// Cone id → full-netlist id.
    back: Vec<NodeId>,
}

impl IdMap {
    /// The cone id of full-netlist node `full`, if it lies in the cone.
    ///
    /// # Panics
    ///
    /// Panics if `full` is out of range for the full netlist.
    pub fn to_cone(&self, full: NodeId) -> Option<NodeId> {
        match self.forward[full.index()] {
            u32::MAX => None,
            i => Some(NodeId(i)),
        }
    }

    /// The full-netlist id of cone node `cone`.
    ///
    /// # Panics
    ///
    /// Panics if `cone` is out of range for the cone.
    pub fn to_full(&self, cone: NodeId) -> NodeId {
        self.back[cone.index()]
    }

    /// `true` if `full` lies in the cone.
    pub fn contains(&self, full: NodeId) -> bool {
        self.forward[full.index()] != u32::MAX
    }

    /// Number of nodes in the cone.
    pub fn cone_len(&self) -> usize {
        self.back.len()
    }

    /// Number of nodes in the full netlist.
    pub fn full_len(&self) -> usize {
        self.forward.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("full_adder");
        let a = b.input("a");
        let c = b.input("b");
        let cin = b.input("cin");
        let s1 = b.gate2("s1", Bf2::XOR, a, c);
        let sum = b.gate2("sum", Bf2::XOR, s1, cin);
        let c1 = b.gate2("c1", Bf2::AND, a, c);
        let c2 = b.gate2("c2", Bf2::AND, s1, cin);
        let cout = b.gate2("cout", Bf2::OR, c1, c2);
        b.output(sum);
        b.output(cout);
        b.finish().unwrap()
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        for a in [false, true] {
            for b in [false, true] {
                for cin in [false, true] {
                    let out = nl.evaluate(&[a, b, cin]);
                    let total = a as u8 + b as u8 + cin as u8;
                    assert_eq!(out[0], total & 1 == 1, "sum for {a}{b}{cin}");
                    assert_eq!(out[1], total >= 2, "cout for {a}{b}{cin}");
                }
            }
        }
    }

    #[test]
    fn counts_and_depth() {
        let nl = full_adder();
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 5);
        assert_eq!(nl.depth(), 3); // a → s1 → c2 → cout
        assert_eq!(nl.gate_ids().len(), 5);
    }

    #[test]
    fn packed_kinds_round_trip() {
        let mut b = NetlistBuilder::new("kinds");
        let x = b.input("x");
        let k0 = b.constant(false);
        let k1 = b.constant(true);
        let inv = b.gate1("inv", Bf1::Inv, x);
        let g = b.gate2("g", Bf2::NOR, inv, k0);
        b.output(g);
        b.output(k1);
        let nl = b.finish().unwrap();
        assert_eq!(nl.kind(x), NodeKind::Input);
        assert_eq!(nl.kind(k0), NodeKind::Const(false));
        assert_eq!(nl.kind(k1), NodeKind::Const(true));
        assert_eq!(nl.kind(inv), NodeKind::Gate1 { f: Bf1::Inv, a: x });
        assert_eq!(
            nl.kind(g),
            NodeKind::Gate2 {
                f: Bf2::NOR,
                a: inv,
                b: k0
            }
        );
        assert_eq!(nl.node(inv).name, "inv");
    }

    #[test]
    fn fanouts_are_consistent_with_fanins() {
        let nl = full_adder();
        let fo = nl.fanouts();
        let mut edges_from_fanouts = 0usize;
        for list in &fo {
            edges_from_fanouts += list.len();
        }
        let edges_from_fanins: usize = nl.nodes().map(|n| n.kind.fanins().count()).sum();
        assert_eq!(edges_from_fanouts, edges_from_fanins);
    }

    #[test]
    fn fanout_csr_matches_vec_form() {
        let nl = full_adder();
        let fo = nl.fanouts();
        let csr = nl.fanout_csr();
        assert_eq!(csr.len(), nl.len());
        for (i, list) in fo.iter().enumerate() {
            assert_eq!(csr.fanouts(NodeId(i as u32)), &list[..], "node {i}");
        }
        assert_eq!(csr.edge_count(), fo.iter().map(|l| l.len()).sum::<usize>());
    }

    #[test]
    fn find_and_name_map_agree() {
        let nl = full_adder();
        let map = nl.name_map();
        for name in ["a", "b", "cin", "sum", "cout"] {
            assert_eq!(nl.find(name), map.get(name).copied(), "{name}");
        }
        assert_eq!(nl.find("nope"), None);
    }

    #[test]
    fn try_evaluate_rejects_wrong_arity() {
        let nl = full_adder();
        assert!(matches!(
            nl.try_evaluate(&[true]),
            Err(LogicError::InputCountMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn set_gate2_function_changes_semantics() {
        let mut nl = full_adder();
        let sum = nl.find("sum").unwrap();
        nl.set_gate2_function(sum, Bf2::XNOR).unwrap();
        let out = nl.evaluate(&[false, false, false]);
        assert!(out[0]); // XNOR(0,0) = 1 where XOR gave 0.
    }

    #[test]
    fn set_gate2_function_rejects_inputs() {
        let mut nl = full_adder();
        let a = nl.find("a").unwrap();
        assert!(nl.set_gate2_function(a, Bf2::AND).is_err());
    }

    #[test]
    fn check_rejects_duplicate_names() {
        let nodes = vec![
            Node {
                kind: NodeKind::Input,
                name: "x".into(),
            },
            Node {
                kind: NodeKind::Input,
                name: "x".into(),
            },
        ];
        let err =
            Netlist::from_parts("bad", nodes, vec![NodeId(0), NodeId(1)], vec![]).unwrap_err();
        assert!(matches!(err, LogicError::Validation(_)));
    }

    #[test]
    fn check_rejects_non_topological_order() {
        let nodes = vec![
            Node {
                kind: NodeKind::Gate1 {
                    f: Bf1::Inv,
                    a: NodeId(1),
                },
                name: "g".into(),
            },
            Node {
                kind: NodeKind::Input,
                name: "x".into(),
            },
        ];
        let err = Netlist::from_parts("bad", nodes, vec![NodeId(1)], vec![]).unwrap_err();
        assert!(matches!(err, LogicError::Validation(_)));
    }

    #[test]
    fn check_rejects_out_of_order_input_list() {
        let nodes = vec![
            Node {
                kind: NodeKind::Input,
                name: "x".into(),
            },
            Node {
                kind: NodeKind::Input,
                name: "y".into(),
            },
        ];
        let err =
            Netlist::from_parts("bad", nodes, vec![NodeId(1), NodeId(0)], vec![]).unwrap_err();
        assert!(matches!(err, LogicError::Validation(_)));
    }

    #[test]
    fn fanin_cone_of_output_contains_inputs_it_depends_on() {
        let nl = full_adder();
        let cone = nl.fanin_cone(nl.find("cout").unwrap());
        let names: Vec<&str> = cone.iter().map(|&id| nl.node(id).name).collect();
        for needed in ["a", "b", "cin", "c1", "c2", "s1"] {
            assert!(names.contains(&needed), "missing {needed}");
        }
        assert!(!names.contains(&"sum"));
    }

    #[test]
    fn cone_of_extracts_a_working_subcircuit() {
        let nl = full_adder();
        let cout = nl.find("cout").unwrap();
        let (cone, map) = nl.cone_of(&[cout]);
        // `sum` is outside cout's cone; everything else is in it.
        assert_eq!(cone.len(), nl.len() - 1);
        assert_eq!(map.cone_len(), cone.len());
        assert_eq!(map.full_len(), nl.len());
        assert!(!map.contains(nl.find("sum").unwrap()));
        assert_eq!(cone.inputs().len(), 3);
        assert_eq!(cone.outputs().len(), 1);
        // Same function on the shared outputs.
        for a in [false, true] {
            for b in [false, true] {
                for cin in [false, true] {
                    let full = nl.evaluate(&[a, b, cin]);
                    let sub = cone.evaluate(&[a, b, cin]);
                    assert_eq!(sub[0], full[1], "cout for {a}{b}{cin}");
                }
            }
        }
        // Ids map back to the same signals.
        for i in 0..cone.len() {
            let cid = NodeId(i as u32);
            let fid = map.to_full(cid);
            assert_eq!(cone.node(cid).name, nl.node(fid).name);
            assert_eq!(map.to_cone(fid), Some(cid));
        }
    }

    #[test]
    fn cone_of_drops_unreachable_inputs() {
        let mut b = NetlistBuilder::new("two_halves");
        let x = b.input("x");
        let y = b.input("y");
        let gx = b.gate1("gx", Bf1::Inv, x);
        let gy = b.gate1("gy", Bf1::Inv, y);
        b.output(gx);
        b.output(gy);
        let nl = b.finish().unwrap();
        let (cone, map) = nl.cone_of(&[gy]);
        assert_eq!(cone.inputs().len(), 1);
        assert_eq!(cone.node(cone.inputs()[0]).name, "y");
        assert!(!map.contains(x));
        assert_eq!(cone.evaluate(&[true]), vec![false]);
    }

    #[test]
    fn function_histogram_counts() {
        let nl = full_adder();
        let h = nl.function_histogram();
        let and = h.iter().find(|(n, _)| *n == "AND").unwrap();
        assert_eq!(and.1, 2);
        let xor = h.iter().find(|(n, _)| *n == "XOR").unwrap();
        assert_eq!(xor.1, 2);
    }

    #[test]
    fn display_mentions_counts() {
        let nl = full_adder();
        let s = nl.to_string();
        assert!(s.contains("full_adder") && s.contains("3 inputs"));
    }

    #[test]
    fn arena_bytes_is_small_and_tracks_size() {
        let nl = full_adder();
        // 8 nodes: 1 meta byte + 8 fanin bytes + spans + short names.
        assert!(nl.arena_bytes() < 8 * 64, "{}", nl.arena_bytes());
        let (cone, _) = nl.cone_of(&[nl.find("cout").unwrap()]);
        assert!(cone.arena_bytes() < nl.arena_bytes());
    }

    #[test]
    fn constants_evaluate() {
        let mut b = NetlistBuilder::new("consts");
        let one = b.constant(true);
        let zero = b.constant(false);
        let g = b.gate2("g", Bf2::AND, one, zero);
        b.output(g);
        b.output(one);
        let nl = b.finish().unwrap();
        assert_eq!(nl.evaluate(&[]), vec![false, true]);
    }
}
