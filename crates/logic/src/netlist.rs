//! The gate-level netlist intermediate representation.
//!
//! A [`Netlist`] is a DAG of [`Node`]s stored **in topological order**:
//! every gate's fanin indices are strictly smaller than the gate's own
//! index. The builder and parser enforce the invariant; [`Netlist::check`]
//! re-validates it, and all downstream passes (simulation, SAT encoding,
//! timing) rely on a single forward sweep being sufficient.

use crate::bf2::{Bf1, Bf2};
use crate::error::LogicError;
use std::collections::HashMap;
use std::fmt;

/// Index of a node within its netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The functional kind of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Primary input.
    Input,
    /// Constant driver.
    Const(bool),
    /// One-input gate.
    Gate1 {
        /// Function.
        f: Bf1,
        /// Fanin.
        a: NodeId,
    },
    /// Two-input gate.
    Gate2 {
        /// Function.
        f: Bf2,
        /// First fanin.
        a: NodeId,
        /// Second fanin.
        b: NodeId,
    },
}

impl NodeKind {
    /// Fanin node ids (0, 1 or 2 of them).
    pub fn fanins(&self) -> impl Iterator<Item = NodeId> + '_ {
        let (a, b) = match *self {
            NodeKind::Input | NodeKind::Const(_) => (None, None),
            NodeKind::Gate1 { a, .. } => (Some(a), None),
            NodeKind::Gate2 { a, b, .. } => (Some(a), Some(b)),
        };
        a.into_iter().chain(b)
    }

    /// `true` for `Gate1` and `Gate2`.
    pub const fn is_gate(&self) -> bool {
        matches!(self, NodeKind::Gate1 { .. } | NodeKind::Gate2 { .. })
    }

    /// The single gate-evaluation core shared by every interpreter —
    /// scalar [`Netlist::evaluate`], the bit-parallel
    /// [`crate::Simulator`], and the noise-aware
    /// [`crate::FaultSimulator`].
    ///
    /// Evaluates this node over 64 bit-packed lanes: `values` holds the
    /// already-computed lanes of earlier nodes (fanins are strictly
    /// earlier by the topological invariant), and `input` supplies the
    /// lane word for [`NodeKind::Input`] nodes (ignored otherwise). Scalar
    /// interpreters use lane 0 only; every operation is bitwise, so the
    /// unused lanes are free.
    #[inline]
    pub fn eval_lanes(&self, values: &[u64], input: u64) -> u64 {
        match *self {
            NodeKind::Input => input,
            NodeKind::Const(c) => {
                if c {
                    !0
                } else {
                    0
                }
            }
            NodeKind::Gate1 { f, a } => f.eval_u64(values[a.index()]),
            NodeKind::Gate2 { f, a, b } => f.eval_u64(values[a.index()], values[b.index()]),
        }
    }
}

/// A single node: its kind plus a (unique) signal name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Functional kind.
    pub kind: NodeKind,
    /// Signal name (unique within the netlist).
    pub name: String,
}

/// A combinational gate-level netlist in topological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

impl Netlist {
    /// Assembles a netlist from raw parts, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] if node order is not topological,
    /// names collide, outputs dangle, or inputs are misclassified.
    pub fn from_parts(
        name: impl Into<String>,
        nodes: Vec<Node>,
        inputs: Vec<NodeId>,
        outputs: Vec<NodeId>,
    ) -> Result<Self, LogicError> {
        let nl = Netlist {
            name: name.into(),
            nodes,
            inputs,
            outputs,
        };
        nl.check()?;
        Ok(nl)
    }

    /// Re-validates every structural invariant.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] describing the first violation.
    pub fn check(&self) -> Result<(), LogicError> {
        let n = self.nodes.len();
        let mut seen_names: HashMap<&str, usize> = HashMap::with_capacity(n);
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(prev) = seen_names.insert(node.name.as_str(), i) {
                return Err(LogicError::Validation(format!(
                    "name `{}` used by nodes {prev} and {i}",
                    node.name
                )));
            }
            for fanin in node.kind.fanins() {
                if fanin.index() >= i {
                    return Err(LogicError::Validation(format!(
                        "node {i} (`{}`) has non-topological fanin {fanin}",
                        node.name
                    )));
                }
            }
        }
        for (pos, &id) in self.inputs.iter().enumerate() {
            let node = self.nodes.get(id.index()).ok_or_else(|| {
                LogicError::Validation(format!("input list entry {pos} out of range"))
            })?;
            if node.kind != NodeKind::Input {
                return Err(LogicError::Validation(format!(
                    "node `{}` listed as input but is not an Input node",
                    node.name
                )));
            }
        }
        let listed = self.inputs.len();
        let actual = self
            .nodes
            .iter()
            .filter(|nd| nd.kind == NodeKind::Input)
            .count();
        if listed != actual {
            return Err(LogicError::Validation(format!(
                "{actual} Input nodes but {listed} listed as primary inputs"
            )));
        }
        for &id in &self.outputs {
            if id.index() >= n {
                return Err(LogicError::Validation(format!("output {id} out of range")));
            }
        }
        Ok(())
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of nodes (inputs + constants + gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of gate nodes (excludes inputs and constants).
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_gate()).count()
    }

    /// Ids of all gate nodes, in topological order.
    pub fn gate_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind.is_gate())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Id of the node with signal name `name`, if any (linear scan; build a
    /// map via [`Netlist::name_map`] for repeated lookups).
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Name → id map for all signals.
    pub fn name_map(&self) -> HashMap<&str, NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.as_str(), NodeId(i as u32)))
            .collect()
    }

    /// Fanout adjacency: for each node, the ids of nodes it feeds.
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for fanin in node.kind.fanins() {
                out[fanin.index()].push(NodeId(i as u32));
            }
        }
        out
    }

    /// Logic level of every node (inputs/constants at level 0).
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            level[i] = node
                .kind
                .fanins()
                .map(|f| level[f.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        level
    }

    /// Logic depth: the maximum level over all outputs.
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|o| levels[o.index()])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the netlist on one input assignment (values in
    /// `inputs()` order) and returns the output values in `outputs()` order.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.inputs().len()`; use
    /// [`Netlist::try_evaluate`] for fallible evaluation.
    pub fn evaluate(&self, values: &[bool]) -> Vec<bool> {
        self.try_evaluate(values).expect("input count mismatch")
    }

    /// Fallible single-pattern evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] on arity mismatch.
    pub fn try_evaluate(&self, values: &[bool]) -> Result<Vec<bool>, LogicError> {
        let all = self.evaluate_all(values)?;
        Ok(self.outputs.iter().map(|o| all[o.index()]).collect())
    }

    /// Evaluates every node; returns one value per node in topological
    /// order. Useful for fault-injection and probing experiments.
    ///
    /// Runs lane 0 of the shared bit-parallel gate core
    /// ([`NodeKind::eval_lanes`]) so scalar and packed evaluation cannot
    /// drift apart.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] on arity mismatch.
    pub fn evaluate_all(&self, values: &[bool]) -> Result<Vec<bool>, LogicError> {
        if values.len() != self.inputs.len() {
            return Err(LogicError::InputCountMismatch {
                expected: self.inputs.len(),
                got: values.len(),
            });
        }
        let mut lanes = vec![0u64; self.nodes.len()];
        let mut next_input = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            let input = if node.kind == NodeKind::Input {
                let v = values[next_input] as u64;
                next_input += 1;
                v
            } else {
                0
            };
            lanes[i] = node.kind.eval_lanes(&lanes, input);
        }
        Ok(lanes.iter().map(|&v| v & 1 == 1).collect())
    }

    /// Replaces the function of the two-input gate `id`.
    ///
    /// This is the primitive operation behind runtime polymorphism
    /// (Sec. V-C) and behind installing decoy functions during
    /// camouflaging.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] if `id` is not a `Gate2`.
    pub fn set_gate2_function(&mut self, id: NodeId, f: Bf2) -> Result<(), LogicError> {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Gate2 { f: slot, .. } => {
                *slot = f;
                Ok(())
            }
            other => Err(LogicError::Validation(format!(
                "node {id} is {other:?}, not a two-input gate"
            ))),
        }
    }

    /// Replaces the function of the one-input gate `id` (keeping fanin `a`,
    /// which must match the existing fanin).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] if `id` is not a `Gate1` or the
    /// fanin does not match.
    pub fn set_gate1_function(&mut self, id: NodeId, f: Bf1, a: NodeId) -> Result<(), LogicError> {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Gate1 { f: slot, a: fanin } if *fanin == a => {
                *slot = f;
                Ok(())
            }
            other => Err(LogicError::Validation(format!(
                "node {id} is {other:?}, not a one-input gate fed by {a}"
            ))),
        }
    }

    /// A histogram of gate functions: `(function name, count)` sorted by
    /// descending count.
    pub fn function_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for node in &self.nodes {
            match node.kind {
                NodeKind::Gate1 { f, .. } => *counts.entry(f.name()).or_default() += 1,
                NodeKind::Gate2 { f, .. } => *counts.entry(f.name()).or_default() += 1,
                _ => {}
            }
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(y.0)));
        v
    }

    /// Ids of nodes in the transitive fanin cone of `root` (including
    /// `root`).
    pub fn fanin_cone(&self, root: NodeId) -> Vec<NodeId> {
        let mut marked = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if marked[id.index()] {
                continue;
            }
            marked[id.index()] = true;
            stack.extend(self.nodes[id.index()].kind.fanins());
        }
        marked
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, depth {}",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gate_count(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("full_adder");
        let a = b.input("a");
        let c = b.input("b");
        let cin = b.input("cin");
        let s1 = b.gate2("s1", Bf2::XOR, a, c);
        let sum = b.gate2("sum", Bf2::XOR, s1, cin);
        let c1 = b.gate2("c1", Bf2::AND, a, c);
        let c2 = b.gate2("c2", Bf2::AND, s1, cin);
        let cout = b.gate2("cout", Bf2::OR, c1, c2);
        b.output(sum);
        b.output(cout);
        b.finish().unwrap()
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        for a in [false, true] {
            for b in [false, true] {
                for cin in [false, true] {
                    let out = nl.evaluate(&[a, b, cin]);
                    let total = a as u8 + b as u8 + cin as u8;
                    assert_eq!(out[0], total & 1 == 1, "sum for {a}{b}{cin}");
                    assert_eq!(out[1], total >= 2, "cout for {a}{b}{cin}");
                }
            }
        }
    }

    #[test]
    fn counts_and_depth() {
        let nl = full_adder();
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 5);
        assert_eq!(nl.depth(), 3); // a → s1 → c2 → cout
        assert_eq!(nl.gate_ids().len(), 5);
    }

    #[test]
    fn fanouts_are_consistent_with_fanins() {
        let nl = full_adder();
        let fo = nl.fanouts();
        let mut edges_from_fanouts = 0usize;
        for list in &fo {
            edges_from_fanouts += list.len();
        }
        let edges_from_fanins: usize = nl.nodes().iter().map(|n| n.kind.fanins().count()).sum();
        assert_eq!(edges_from_fanouts, edges_from_fanins);
    }

    #[test]
    fn find_and_name_map_agree() {
        let nl = full_adder();
        let map = nl.name_map();
        for name in ["a", "b", "cin", "sum", "cout"] {
            assert_eq!(nl.find(name), map.get(name).copied(), "{name}");
        }
        assert_eq!(nl.find("nope"), None);
    }

    #[test]
    fn try_evaluate_rejects_wrong_arity() {
        let nl = full_adder();
        assert!(matches!(
            nl.try_evaluate(&[true]),
            Err(LogicError::InputCountMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn set_gate2_function_changes_semantics() {
        let mut nl = full_adder();
        let sum = nl.find("sum").unwrap();
        nl.set_gate2_function(sum, Bf2::XNOR).unwrap();
        let out = nl.evaluate(&[false, false, false]);
        assert!(out[0]); // XNOR(0,0) = 1 where XOR gave 0.
    }

    #[test]
    fn set_gate2_function_rejects_inputs() {
        let mut nl = full_adder();
        let a = nl.find("a").unwrap();
        assert!(nl.set_gate2_function(a, Bf2::AND).is_err());
    }

    #[test]
    fn check_rejects_duplicate_names() {
        let nodes = vec![
            Node {
                kind: NodeKind::Input,
                name: "x".into(),
            },
            Node {
                kind: NodeKind::Input,
                name: "x".into(),
            },
        ];
        let err =
            Netlist::from_parts("bad", nodes, vec![NodeId(0), NodeId(1)], vec![]).unwrap_err();
        assert!(matches!(err, LogicError::Validation(_)));
    }

    #[test]
    fn check_rejects_non_topological_order() {
        let nodes = vec![
            Node {
                kind: NodeKind::Gate1 {
                    f: Bf1::Inv,
                    a: NodeId(1),
                },
                name: "g".into(),
            },
            Node {
                kind: NodeKind::Input,
                name: "x".into(),
            },
        ];
        let err = Netlist::from_parts("bad", nodes, vec![NodeId(1)], vec![]).unwrap_err();
        assert!(matches!(err, LogicError::Validation(_)));
    }

    #[test]
    fn fanin_cone_of_output_contains_inputs_it_depends_on() {
        let nl = full_adder();
        let cone = nl.fanin_cone(nl.find("cout").unwrap());
        let names: Vec<&str> = cone.iter().map(|&id| nl.node(id).name.as_str()).collect();
        for needed in ["a", "b", "cin", "c1", "c2", "s1"] {
            assert!(names.contains(&needed), "missing {needed}");
        }
        assert!(!names.contains(&"sum"));
    }

    #[test]
    fn function_histogram_counts() {
        let nl = full_adder();
        let h = nl.function_histogram();
        let and = h.iter().find(|(n, _)| *n == "AND").unwrap();
        assert_eq!(and.1, 2);
        let xor = h.iter().find(|(n, _)| *n == "XOR").unwrap();
        assert_eq!(xor.1, 2);
    }

    #[test]
    fn display_mentions_counts() {
        let nl = full_adder();
        let s = nl.to_string();
        assert!(s.contains("full_adder") && s.contains("3 inputs"));
    }

    #[test]
    fn constants_evaluate() {
        let mut b = NetlistBuilder::new("consts");
        let one = b.constant(true);
        let zero = b.constant(false);
        let g = b.gate2("g", Bf2::AND, one, zero);
        b.output(g);
        b.output(one);
        let nl = b.finish().unwrap();
        assert_eq!(nl.evaluate(&[]), vec![false, true]);
    }
}
