//! The paper's benchmark suites (Table III), realized through the synthetic
//! generator.
//!
//! Gate counts can be *scaled down* uniformly (`scale` parameter) so the
//! SAT-attack study completes in minutes instead of the paper's 48-hour
//! Xeon budget; the attack-hardness *ordering* across schemes and
//! protection levels is preserved (see DESIGN.md, substitution 3).

use crate::generator::{GeneratorConfig, NetlistGenerator, Topology};
use crate::netlist::Netlist;

/// Which suite a benchmark belongs to (Table III typography: EPFL in
/// italics, IBM superblue in bold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// ISCAS-85 combinational circuits.
    Iscas85,
    /// ISCAS-89 sequential circuits.
    Iscas89,
    /// MCNC benchmarks.
    Mcnc,
    /// ITC-99 benchmarks.
    Itc99,
    /// IWLS/OpenCores-style industrial blocks.
    Iwls,
    /// EPFL arithmetic suite.
    Epfl,
    /// IBM superblue placement suite (sequential, scan-preprocessed).
    Superblue,
}

/// One benchmark row of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Primary inputs (after scan preprocessing for sequential designs).
    pub inputs: usize,
    /// Primary outputs (after scan preprocessing).
    pub outputs: usize,
    /// Gate count as synthesized in the paper.
    pub gates: usize,
    /// Source suite.
    pub suite: Suite,
    /// Depth profile: higher for arithmetic-heavy circuits (log2, aes).
    pub chain_bias: f64,
}

/// The twelve benchmarks of Table III.
pub const TABLE_III: &[BenchmarkSpec] = &[
    BenchmarkSpec {
        name: "aes_core",
        inputs: 789,
        outputs: 668,
        gates: 39_014,
        suite: Suite::Iwls,
        chain_bias: 0.10,
    },
    BenchmarkSpec {
        name: "b14",
        inputs: 277,
        outputs: 299,
        gates: 11_028,
        suite: Suite::Itc99,
        chain_bias: 0.15,
    },
    BenchmarkSpec {
        name: "b21",
        inputs: 522,
        outputs: 512,
        gates: 22_715,
        suite: Suite::Itc99,
        chain_bias: 0.15,
    },
    BenchmarkSpec {
        name: "c7552",
        inputs: 207,
        outputs: 108,
        gates: 4_045,
        suite: Suite::Iscas85,
        chain_bias: 0.12,
    },
    BenchmarkSpec {
        name: "ex1010",
        inputs: 10,
        outputs: 10,
        gates: 5_066,
        suite: Suite::Mcnc,
        chain_bias: 0.05,
    },
    BenchmarkSpec {
        name: "pci_bridge32",
        inputs: 3_520,
        outputs: 3_528,
        gates: 35_992,
        suite: Suite::Iwls,
        chain_bias: 0.08,
    },
    BenchmarkSpec {
        name: "log2",
        inputs: 32,
        outputs: 32,
        gates: 51_627,
        suite: Suite::Epfl,
        chain_bias: 0.30,
    },
    BenchmarkSpec {
        name: "sb1",
        inputs: 8_320,
        outputs: 13_025,
        gates: 856_403,
        suite: Suite::Superblue,
        chain_bias: 0.06,
    },
    BenchmarkSpec {
        name: "sb5",
        inputs: 11_661,
        outputs: 9_617,
        gates: 741_483,
        suite: Suite::Superblue,
        chain_bias: 0.06,
    },
    BenchmarkSpec {
        name: "sb10",
        inputs: 10_454,
        outputs: 23_663,
        gates: 1_117_846,
        suite: Suite::Superblue,
        chain_bias: 0.06,
    },
    BenchmarkSpec {
        name: "sb12",
        inputs: 1_936,
        outputs: 4_629,
        gates: 1_523_108,
        suite: Suite::Superblue,
        chain_bias: 0.06,
    },
    BenchmarkSpec {
        name: "sb18",
        inputs: 3_921,
        outputs: 7_465,
        gates: 659_511,
        suite: Suite::Superblue,
        chain_bias: 0.06,
    },
];

/// The s38584 benchmark (ISCAS-89) used for the Sec. II cost-limited
/// STT-LUT experiment; interface counts after scan preprocessing
/// (38 PIs + 1426 pseudo-PIs, 304 POs + 1426 pseudo-POs).
pub const S38584: BenchmarkSpec = BenchmarkSpec {
    name: "s38584",
    inputs: 38 + 1_426,
    outputs: 304 + 1_426,
    gates: 19_253,
    suite: Suite::Iscas89,
    chain_bias: 0.08,
};

/// Looks up a Table III spec by name.
pub fn spec(name: &str) -> Option<&'static BenchmarkSpec> {
    TABLE_III
        .iter()
        .find(|s| s.name == name)
        .or(if name == "s38584" {
            Some(&S38584)
        } else {
            None
        })
}

/// Names of every known benchmark (Table III plus `s38584`), in table
/// order.
pub fn all_names() -> impl Iterator<Item = &'static str> {
    TABLE_III
        .iter()
        .map(|s| s.name)
        .chain(std::iter::once(S38584.name))
}

/// All benchmarks belonging to one suite.
pub fn by_suite(suite: Suite) -> Vec<&'static BenchmarkSpec> {
    TABLE_III
        .iter()
        .chain(std::iter::once(&S38584))
        .filter(|s| s.suite == suite)
        .collect()
}

impl Suite {
    /// Short machine-friendly name, used by suite selectors.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Iscas85 => "iscas85",
            Suite::Iscas89 => "iscas89",
            Suite::Mcnc => "mcnc",
            Suite::Itc99 => "itc99",
            Suite::Iwls => "iwls",
            Suite::Epfl => "epfl",
            Suite::Superblue => "superblue",
        }
    }

    /// Parses [`Suite::name`] back into a suite.
    pub fn parse(name: &str) -> Option<Suite> {
        [
            Suite::Iscas85,
            Suite::Iscas89,
            Suite::Mcnc,
            Suite::Itc99,
            Suite::Iwls,
            Suite::Epfl,
            Suite::Superblue,
        ]
        .into_iter()
        .find(|s| s.name() == name)
    }
}

/// Resolves a benchmark selector into specs:
///
/// * `"all"` — every Table III benchmark (excluding `s38584`);
/// * `"suite:<name>"` — every benchmark of that suite (e.g. `suite:itc99`);
/// * otherwise — the single named benchmark.
///
/// Returns an empty vector for unknown names, so callers can report the
/// selector that failed.
pub fn resolve_selector(selector: &str) -> Vec<&'static BenchmarkSpec> {
    if selector == "all" {
        return TABLE_III.iter().collect();
    }
    if let Some(suite_name) = selector.strip_prefix("suite:") {
        return Suite::parse(suite_name).map(by_suite).unwrap_or_default();
    }
    spec(selector).into_iter().collect()
}

/// Instantiates a benchmark as a synthetic netlist.
///
/// `scale ≥ 1` divides the gate count (PI/PO counts are kept, except where
/// the scaled gate count could no longer drive all outputs, in which case
/// outputs are reduced proportionally — reported via the returned netlist's
/// stats). `seed` controls the topology.
///
/// # Panics
///
/// Panics if `scale == 0`.
pub fn benchmark(spec: &BenchmarkSpec, scale: usize, seed: u64) -> Netlist {
    benchmark_with(spec, scale, seed, Topology::Uniform)
}

/// [`benchmark`] with an explicit fanin [`Topology`].
/// [`Topology::Uniform`] reproduces [`benchmark`] bit-for-bit;
/// [`Topology::Local`] builds the placed-netlist profile whose bounded
/// influence cones make cone-of-influence attacks representative at
/// superblue scale.
///
/// # Panics
///
/// Panics if `scale == 0`.
pub fn benchmark_with(
    spec: &BenchmarkSpec,
    scale: usize,
    seed: u64,
    topology: Topology,
) -> Netlist {
    assert!(scale > 0, "scale must be at least 1");
    let gates = (spec.gates / scale).max(8);
    let outputs = spec.outputs.min(gates);
    let inputs = spec.inputs.max(2);
    let cfg = GeneratorConfig::new(spec.name, inputs, outputs, gates)
        .with_seed(seed ^ 0x5EED_0000)
        .with_chain_bias(spec.chain_bias)
        .with_topology(topology);
    NetlistGenerator::new(cfg)
        .expect("specs are valid")
        .generate()
}

/// Instantiates a benchmark with **proportional** scaling: gates *and*
/// interface widths divide by `scale` (floors: 32 inputs, 16 outputs, 64
/// gates), preserving the gates-per-endpoint ratio — and with it the logic
/// depth and the path-delay *shape* — at tractable sizes. This is the
/// constructor the Table IV / Fig. 6 harnesses use.
///
/// # Panics
///
/// Panics if `scale == 0`.
pub fn benchmark_scaled(spec: &BenchmarkSpec, scale: usize, seed: u64) -> Netlist {
    benchmark_scaled_with(spec, scale, seed, Topology::Uniform)
}

/// [`benchmark_scaled`] with an explicit fanin [`Topology`] (see
/// [`benchmark_with`]).
///
/// # Panics
///
/// Panics if `scale == 0`.
pub fn benchmark_scaled_with(
    spec: &BenchmarkSpec,
    scale: usize,
    seed: u64,
    topology: Topology,
) -> Netlist {
    assert!(scale > 0, "scale must be at least 1");
    let gates = (spec.gates / scale).max(64);
    let inputs = (spec.inputs / scale).max(32);
    let outputs = (spec.outputs / scale).clamp(16, gates);
    let cfg = GeneratorConfig::new(spec.name, inputs, outputs, gates)
        .with_seed(seed ^ 0x5CA1_ED00)
        .with_chain_bias(spec.chain_bias)
        .with_topology(topology);
    NetlistGenerator::new(cfg)
        .expect("specs are valid")
        .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetlistStats;

    #[test]
    fn proportional_scaling_preserves_gate_output_ratio() {
        let spec = spec("sb1").unwrap();
        let nl = benchmark_scaled(spec, 100, 3);
        let s = NetlistStats::compute(&nl);
        let full_ratio = spec.gates as f64 / spec.outputs as f64;
        let scaled_ratio = s.gates as f64 / s.outputs as f64;
        assert!(
            (scaled_ratio / full_ratio - 1.0).abs() < 0.35,
            "ratio drifted: {scaled_ratio} vs {full_ratio}"
        );
    }

    #[test]
    fn proportional_scaling_applies_floors() {
        let spec = spec("ex1010").unwrap(); // 10 PIs
        let nl = benchmark_scaled(spec, 10, 3);
        assert_eq!(nl.inputs().len(), 32); // floored up for DIP-space realism
        assert_eq!(nl.gate_count(), 506);
    }

    #[test]
    fn table_iii_matches_paper_counts() {
        // Spot-check the transcription against the paper's Table III.
        let aes = spec("aes_core").unwrap();
        assert_eq!((aes.inputs, aes.outputs, aes.gates), (789, 668, 39_014));
        let sb12 = spec("sb12").unwrap();
        assert_eq!(
            (sb12.inputs, sb12.outputs, sb12.gates),
            (1_936, 4_629, 1_523_108)
        );
        let log2 = spec("log2").unwrap();
        assert_eq!((log2.inputs, log2.outputs, log2.gates), (32, 32, 51_627));
        assert_eq!(TABLE_III.len(), 12);
    }

    #[test]
    fn unscaled_small_benchmark_has_exact_interface() {
        let nl = benchmark(spec("ex1010").unwrap(), 1, 42);
        let s = NetlistStats::compute(&nl);
        assert_eq!((s.inputs, s.outputs, s.gates), (10, 10, 5_066));
    }

    #[test]
    fn scaling_divides_gates() {
        let nl = benchmark(spec("c7552").unwrap(), 10, 42);
        let s = NetlistStats::compute(&nl);
        assert_eq!(s.gates, 404);
        assert_eq!(s.inputs, 207);
        assert_eq!(s.outputs, 108);
    }

    #[test]
    fn superblue_scales_to_tractable_size() {
        let nl = benchmark(spec("sb1").unwrap(), 100, 1);
        let s = NetlistStats::compute(&nl);
        assert_eq!(s.gates, 8_564);
        // POs exceed gates at this scale? 13_025 > 8_564 → clamped.
        assert_eq!(s.outputs, 8_564);
    }

    #[test]
    fn benchmark_is_reproducible() {
        let a = benchmark(spec("ex1010").unwrap(), 10, 7);
        let b = benchmark(spec("ex1010").unwrap(), 10, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn s38584_spec_reflects_scan_preprocessing() {
        assert_eq!(S38584.inputs, 1_464);
        assert_eq!(S38584.outputs, 1_730);
        assert_eq!(spec("s38584"), Some(&S38584));
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert_eq!(spec("c17_missing"), None);
    }

    #[test]
    fn enumeration_helpers_cover_the_tables() {
        assert_eq!(all_names().count(), TABLE_III.len() + 1);
        assert!(all_names().any(|n| n == "s38584"));
        let itc = by_suite(Suite::Itc99);
        assert_eq!(
            itc.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["b14", "b21"]
        );
        assert_eq!(by_suite(Suite::Iscas89).len(), 1);
    }

    #[test]
    fn suite_names_round_trip() {
        for suite in [
            Suite::Iscas85,
            Suite::Iscas89,
            Suite::Mcnc,
            Suite::Itc99,
            Suite::Iwls,
            Suite::Epfl,
            Suite::Superblue,
        ] {
            assert_eq!(Suite::parse(suite.name()), Some(suite));
        }
        assert_eq!(Suite::parse("vtr"), None);
    }

    #[test]
    fn selectors_resolve() {
        assert_eq!(resolve_selector("all").len(), TABLE_III.len());
        assert_eq!(resolve_selector("suite:epfl").len(), 1);
        assert_eq!(resolve_selector("c7552").len(), 1);
        assert!(resolve_selector("bogus").is_empty());
        assert!(resolve_selector("suite:bogus").is_empty());
    }

    #[test]
    fn topology_variants_share_interface_counts() {
        let spec = spec("c7552").unwrap();
        let u = benchmark_with(spec, 10, 42, Topology::Uniform);
        let l = benchmark_with(spec, 10, 42, Topology::Local);
        // Uniform is the historical constructor bit-for-bit; local is a
        // different netlist with the same interface.
        assert_eq!(u, benchmark(spec, 10, 42));
        assert_ne!(u, l);
        let su = NetlistStats::compute(&u);
        let sl = NetlistStats::compute(&l);
        assert_eq!((su.inputs, su.outputs), (sl.inputs, sl.outputs));
        assert_eq!(su.gates, sl.gates);
        assert_eq!(
            benchmark_scaled(spec, 10, 42),
            benchmark_scaled_with(spec, 10, 42, Topology::Uniform)
        );
    }

    #[test]
    fn log2_is_deepest_per_gate() {
        // The EPFL log2 circuit is arithmetic-heavy: our profile encodes
        // that through a larger chain bias.
        let log2 = spec("log2").unwrap();
        let sb = spec("sb1").unwrap();
        assert!(log2.chain_bias > sb.chain_bias);
    }
}
