//! ASCII AIGER (`.aag`) frontend.
//!
//! Parses the and-inverter-graph interchange format of Biere's AIGER
//! suite into a [`Netlist`], lowering inverter edges into the gate
//! library: an AND whose operands carry inversion bits becomes the one
//! [`Bf2`] whose truth table matches (`AND`, `a ∧ ¬b`, `¬a ∧ b`, or
//! `NOR` for both edges inverted), so no explicit inverter nodes are
//! materialized inside the graph. Output (and latch next-state) literals
//! with an inversion bit get a single [`Bf1::Inv`] node.
//!
//! Latches are **cut** exactly like the `.bench` frontend cuts DFFs into
//! a combinational core: each latch's current-state variable becomes a
//! primary input, and its next-state function is appended as a primary
//! output (after the declared outputs, in latch order).
//!
//! [`write_aag`] emits the parse-producible subset back out: inputs,
//! constants, `Buf`/`Inv` chains (folded into inverter edges), and the
//! four AND-with-inverted-edges [`Bf2`] functions. Gates outside that
//! set (OR, XOR, …) are rejected — lower them first if round-tripping
//! arbitrary netlists.

use crate::bf2::{Bf1, Bf2};
use crate::builder::NetlistBuilder;
use crate::error::LogicError;
use crate::netlist::{Netlist, NodeId, NodeKind};
use std::collections::{HashMap, HashSet};

fn parse_err(line: usize, message: impl Into<String>) -> LogicError {
    LogicError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_lits(s: &str, n: usize, line: usize, what: &str) -> Result<Vec<u32>, LogicError> {
    let lits: Vec<u32> = s
        .split_whitespace()
        .map(|t| t.parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(line, format!("bad {what} literal: {e}")))?;
    if lits.len() != n {
        return Err(parse_err(
            line,
            format!("expected {n} {what} literals, got {}", lits.len()),
        ));
    }
    Ok(lits)
}

/// Parses an ASCII AIGER (`aag`) document into a combinational
/// [`Netlist`]. See the [module docs](self) for the lowering and the
/// latch-cutting contract.
///
/// # Errors
///
/// Returns [`LogicError::Parse`] for malformed headers or lines,
/// [`LogicError::DuplicateSignal`] for re-defined variables,
/// [`LogicError::UnknownSignal`] for references to undefined variables,
/// and [`LogicError::CombinationalLoop`] for cyclic AND definitions.
pub fn parse_aag(text: &str) -> Result<Netlist, LogicError> {
    let mut lines = text.lines().enumerate();
    let (hline, header) = lines.next().ok_or_else(|| parse_err(1, "empty document"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(parse_err(hline + 1, "header must be `aag M I L O A`"));
    }
    let nums: Vec<u32> = fields[1..]
        .iter()
        .map(|t| t.parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(hline + 1, format!("bad header field: {e}")))?;
    let (max_var, n_in, n_latch, n_out, n_and) = (
        nums[0],
        nums[1] as usize,
        nums[2] as usize,
        nums[3] as usize,
        nums[4] as usize,
    );

    let mut input_vars: Vec<u32> = Vec::with_capacity(n_in);
    let mut latches: Vec<(u32, u32)> = Vec::with_capacity(n_latch); // (current var, next lit)
    let mut output_lits: Vec<u32> = Vec::with_capacity(n_out);
    let mut and_defs: HashMap<u32, (u32, u32)> = HashMap::with_capacity(n_and);
    let mut and_order: Vec<u32> = Vec::with_capacity(n_and);
    let mut defined: HashSet<u32> = HashSet::new();

    let mut next = |what: &str| {
        lines
            .next()
            .ok_or_else(|| parse_err(0, format!("unexpected end of file in {what} section")))
    };
    for _ in 0..n_in {
        let (i, l) = next("input")?;
        let lit = parse_lits(l, 1, i + 1, "input")?[0];
        if lit < 2 || !lit.is_multiple_of(2) {
            return Err(parse_err(i + 1, "input literal must be even and nonzero"));
        }
        if !defined.insert(lit >> 1) {
            return Err(LogicError::DuplicateSignal(format!(
                "variable {}",
                lit >> 1
            )));
        }
        input_vars.push(lit >> 1);
    }
    for _ in 0..n_latch {
        let (i, l) = next("latch")?;
        // Optional third field (reset value) is tolerated and ignored.
        let lits: Vec<u32> = l
            .split_whitespace()
            .map(|t| t.parse::<u32>())
            .collect::<Result<_, _>>()
            .map_err(|e| parse_err(i + 1, format!("bad latch literal: {e}")))?;
        if lits.len() < 2 || lits.len() > 3 {
            return Err(parse_err(i + 1, "latch line must be `current next [init]`"));
        }
        if lits[0] < 2 || !lits[0].is_multiple_of(2) {
            return Err(parse_err(i + 1, "latch literal must be even and nonzero"));
        }
        if !defined.insert(lits[0] >> 1) {
            return Err(LogicError::DuplicateSignal(format!(
                "variable {}",
                lits[0] >> 1
            )));
        }
        latches.push((lits[0] >> 1, lits[1]));
    }
    for _ in 0..n_out {
        let (i, l) = next("output")?;
        output_lits.push(parse_lits(l, 1, i + 1, "output")?[0]);
    }
    for _ in 0..n_and {
        let (i, l) = next("and")?;
        let lits = parse_lits(l, 3, i + 1, "and")?;
        if lits[0] < 2 || !lits[0].is_multiple_of(2) {
            return Err(parse_err(i + 1, "and literal must be even and nonzero"));
        }
        let var = lits[0] >> 1;
        if !defined.insert(var) {
            return Err(LogicError::DuplicateSignal(format!("variable {var}")));
        }
        and_defs.insert(var, (lits[1], lits[2]));
        and_order.push(var);
    }
    for (var, (r0, r1)) in &and_defs {
        for r in [r0, r1] {
            let v = r >> 1;
            if v != 0 && !defined.contains(&v) {
                return Err(LogicError::UnknownSignal(format!(
                    "variable {v} (used by and {var})"
                )));
            }
        }
    }
    for (k, lit) in output_lits.iter().enumerate() {
        let v = lit >> 1;
        if v != 0 && !defined.contains(&v) {
            return Err(LogicError::UnknownSignal(format!(
                "variable {v} (output {k})"
            )));
        }
    }
    if let Some(&v) = defined.iter().find(|&&v| v > max_var) {
        return Err(LogicError::Validation(format!(
            "variable {v} exceeds declared maximum {max_var}"
        )));
    }

    // Symbol table: `i<k> name`, `l<k> name`, `o<k> name` until `c`/EOF.
    let mut in_names: HashMap<usize, String> = HashMap::new();
    let mut latch_names: HashMap<usize, String> = HashMap::new();
    let mut out_names: HashMap<usize, String> = HashMap::new();
    for (i, l) in lines {
        let l = l.trim();
        if l == "c" {
            break;
        }
        if l.is_empty() {
            continue;
        }
        let (tag, rest) = l.split_at(1);
        let (idx, name) = rest
            .split_once(' ')
            .ok_or_else(|| parse_err(i + 1, "symbol line must be `<pos> <name>`"))?;
        let idx: usize = idx
            .parse()
            .map_err(|e| parse_err(i + 1, format!("bad symbol position: {e}")))?;
        match tag {
            "i" => in_names.insert(idx, name.to_string()),
            "l" => latch_names.insert(idx, name.to_string()),
            "o" => out_names.insert(idx, name.to_string()),
            _ => return Err(parse_err(i + 1, "symbol tag must be i/l/o")),
        };
    }

    // Lower into the gate library.
    let mut b = NetlistBuilder::new("aag");
    let mut node_of: HashMap<u32, NodeId> = HashMap::new();
    for (k, &v) in input_vars.iter().enumerate() {
        let name = in_names.get(&k).cloned().unwrap_or_else(|| format!("i{k}"));
        node_of.insert(v, b.input(name));
    }
    for (k, &(v, _)) in latches.iter().enumerate() {
        let name = latch_names
            .get(&k)
            .cloned()
            .unwrap_or_else(|| format!("l{k}"));
        node_of.insert(v, b.input(name));
    }
    let mut consts: [Option<NodeId>; 2] = [None, None];
    let mut constant = |b: &mut NetlistBuilder, value: bool| {
        *consts[value as usize].get_or_insert_with(|| b.constant(value))
    };

    // Build AND nodes in dependency order (the format does not promise
    // definitions precede uses), detecting cycles on the way.
    let mut on_stack: HashSet<u32> = HashSet::new();
    for &root in &and_order {
        if node_of.contains_key(&root) {
            continue;
        }
        let mut stack = vec![root];
        on_stack.insert(root);
        while let Some(&v) = stack.last() {
            if node_of.contains_key(&v) {
                on_stack.remove(&v);
                stack.pop();
                continue;
            }
            let &(r0, r1) = and_defs.get(&v).expect("checked above");
            let mut ready = true;
            for r in [r0, r1] {
                let dep = r >> 1;
                if dep != 0 && !node_of.contains_key(&dep) {
                    if !on_stack.insert(dep) {
                        return Err(LogicError::CombinationalLoop(format!("variable {dep}")));
                    }
                    stack.push(dep);
                    ready = false;
                }
            }
            if !ready {
                continue;
            }
            let fanin = |b: &mut NetlistBuilder,
                         node_of: &HashMap<u32, NodeId>,
                         consts: &mut dyn FnMut(&mut NetlistBuilder, bool) -> NodeId,
                         r: u32| {
                if r >> 1 == 0 {
                    // Literal 0/1: the inversion is folded into the
                    // constant itself, leaving the edge plain.
                    (consts(b, r & 1 == 1), false)
                } else {
                    (node_of[&(r >> 1)], r & 1 == 1)
                }
            };
            let (a, inv_a) = fanin(&mut b, &node_of, &mut constant, r0);
            let (bb, inv_b) = fanin(&mut b, &node_of, &mut constant, r1);
            let mut tt = 0u8;
            for row in 0..4u8 {
                let va = (row & 1 == 1) ^ inv_a;
                let vb = (row & 2 == 2) ^ inv_b;
                if va && vb {
                    tt |= 1 << row;
                }
            }
            let f = Bf2::from_truth_table(tt);
            let id = b.gate2(format!("g{v}"), f, a, bb);
            node_of.insert(v, id);
            on_stack.remove(&v);
            stack.pop();
        }
    }

    // Outputs: declared outputs first, latch next-state functions after.
    let mut emit_output = |b: &mut NetlistBuilder, lit: u32, name: String| {
        let id = if lit >> 1 == 0 {
            constant(b, lit & 1 == 1)
        } else {
            let base = node_of[&(lit >> 1)];
            if lit & 1 == 1 {
                b.gate1(name, Bf1::Inv, base)
            } else {
                base
            }
        };
        b.output(id);
    };
    for (k, &lit) in output_lits.iter().enumerate() {
        let name = out_names
            .get(&k)
            .cloned()
            .unwrap_or_else(|| format!("o{k}"));
        emit_output(&mut b, lit, name);
    }
    for (k, &(_, next_lit)) in latches.iter().enumerate() {
        emit_output(&mut b, next_lit, format!("l{k}_next"));
    }

    b.finish()
}

/// Serializes `netlist` as an ASCII AIGER (`aag`) document. Only the
/// parse-producible gate set is supported: see the [module docs](self).
///
/// # Errors
///
/// Returns [`LogicError::Validation`] naming the first gate whose
/// function is not expressible as an AND with inverted edges.
pub fn write_aag(netlist: &Netlist) -> Result<String, LogicError> {
    // Pass 1: assign AIGER variables (inputs first, then AND gates in
    // topological node order) and resolve every node to a literal —
    // Buf/Inv/Const nodes fold into edges rather than consuming vars.
    let mut lit_of: Vec<u32> = vec![u32::MAX; netlist.len()];
    let mut n_ands = 0usize;
    let mut var = 0u32;
    for &i in netlist.inputs() {
        var += 1;
        lit_of[i.index()] = var << 1;
    }
    for i in 0..netlist.len() {
        match netlist.kind(NodeId(i as u32)) {
            NodeKind::Input => {}
            NodeKind::Const(v) => lit_of[i] = v as u32,
            NodeKind::Gate1 { f, a } => {
                lit_of[i] = match f {
                    Bf1::Buf => lit_of[a.index()],
                    Bf1::Inv => lit_of[a.index()] ^ 1,
                    Bf1::Const0 => 0,
                    Bf1::Const1 => 1,
                }
            }
            NodeKind::Gate2 { f, .. } => {
                if !matches!(f.truth_table(), 1 | 2 | 4 | 8) {
                    return Err(LogicError::Validation(format!(
                        "gate `{}` computes {f}, not an AND with inverted edges",
                        netlist.node(NodeId(i as u32)).name
                    )));
                }
                var += 1;
                n_ands += 1;
                lit_of[i] = var << 1;
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "aag {var} {} 0 {} {n_ands}\n",
        netlist.inputs().len(),
        netlist.outputs().len()
    ));
    for &i in netlist.inputs() {
        out.push_str(&format!("{}\n", lit_of[i.index()]));
    }
    for &o in netlist.outputs() {
        out.push_str(&format!("{}\n", lit_of[o.index()]));
    }
    for i in 0..netlist.len() {
        if let NodeKind::Gate2 { f, a, b } = netlist.kind(NodeId(i as u32)) {
            // tt 8 = a∧b, 2 = a∧¬b, 4 = ¬a∧b, 1 = ¬a∧¬b.
            let (ia, ib) = match f.truth_table() {
                8 => (0u32, 0u32),
                2 => (0, 1),
                4 => (1, 0),
                _ => (1, 1),
            };
            out.push_str(&format!(
                "{} {} {}\n",
                lit_of[i],
                lit_of[a.index()] ^ ia,
                lit_of[b.index()] ^ ib
            ));
        }
    }
    for (k, &i) in netlist.inputs().iter().enumerate() {
        out.push_str(&format!("i{k} {}\n", netlist.node(i).name));
    }
    for (k, &o) in netlist.outputs().iter().enumerate() {
        out.push_str(&format!("o{k} {}\n", netlist.node(o).name));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical AIGER half adder: sum and carry of two inputs.
    const HALF_ADDER: &str = "aag 7 2 0 2 3\n\
         2\n4\n6\n12\n\
         6 13 15\n\
         12 2 4\n\
         14 3 5\n\
         i0 x\ni1 y\no0 s\no1 c\n";

    #[test]
    fn half_adder_parses_and_evaluates() {
        let nl = parse_aag(HALF_ADDER).unwrap();
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 2);
        for (x, y) in [(false, false), (true, false), (false, true), (true, true)] {
            let out = nl.evaluate(&[x, y]);
            assert_eq!(out[0], x ^ y, "sum({x},{y})");
            assert_eq!(out[1], x && y, "carry({x},{y})");
        }
    }

    #[test]
    fn inverter_edges_lower_into_bf2_functions() {
        // 6 = AND(¬2, 5=¬4): both edges inverted → NOR.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 3 5\n";
        let nl = parse_aag(text).unwrap();
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            assert_eq!(nl.evaluate(&[a, b])[0], !a && !b, "nor({a},{b})");
        }
        // No explicit inverter nodes: two inputs + one gate.
        assert_eq!(nl.len(), 3);
        assert_eq!(nl.gate_count(), 1);
    }

    #[test]
    fn inverted_output_gets_one_inv_node() {
        // Output literal 7 = ¬(AND(2,4)) → NAND via one Inv node.
        let text = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n";
        let nl = parse_aag(text).unwrap();
        for (a, b) in [(false, false), (true, true)] {
            assert_eq!(nl.evaluate(&[a, b])[0], !(a && b));
        }
        assert_eq!(nl.gate_count(), 2);
    }

    #[test]
    fn constant_literals_work() {
        // Output 1 is constant true; AND with literal 0 is constant false.
        let text = "aag 2 1 0 2 1\n2\n1\n4\n4 2 0\n";
        let nl = parse_aag(text).unwrap();
        assert_eq!(nl.evaluate(&[true]), vec![true, false]);
        assert_eq!(nl.evaluate(&[false]), vec![true, false]);
    }

    #[test]
    fn latches_are_cut_into_inputs_and_outputs() {
        // A toggle: latch 2 feeds back its own inversion; one output reads
        // the latch. Cut: the latch state becomes input l0, its
        // next-state function an extra output l0_next = ¬l0.
        let text = "aag 1 0 1 1 0\n2 3\n2\nl0 state\n";
        let nl = parse_aag(text).unwrap();
        assert_eq!(nl.inputs().len(), 1);
        assert_eq!(nl.outputs().len(), 2, "declared output + latch next");
        assert_eq!(nl.node(nl.inputs()[0]).name, "state");
        assert_eq!(nl.evaluate(&[false]), vec![false, true]);
        assert_eq!(nl.evaluate(&[true]), vec![true, false]);
    }

    #[test]
    fn out_of_order_definitions_resolve() {
        // 6 is defined before its operand 8.
        let text = "aag 4 2 0 1 2\n2\n4\n6\n6 8 2\n8 2 4\n";
        let nl = parse_aag(text).unwrap();
        for (a, b) in [(true, true), (true, false)] {
            assert_eq!(nl.evaluate(&[a, b])[0], a && b);
        }
    }

    #[test]
    fn cyclic_definitions_are_rejected() {
        let text = "aag 4 1 0 1 2\n2\n6\n6 8 2\n8 6 2\n";
        assert!(matches!(
            parse_aag(text),
            Err(LogicError::CombinationalLoop(_))
        ));
    }

    #[test]
    fn undefined_variables_are_rejected() {
        let text = "aag 4 1 0 1 1\n2\n6\n6 8 2\n";
        assert!(matches!(parse_aag(text), Err(LogicError::UnknownSignal(_))));
    }

    #[test]
    fn malformed_headers_are_rejected() {
        for text in ["", "aig 1 1 0 1 0\n", "aag 1 1 0\n"] {
            assert!(matches!(parse_aag(text), Err(LogicError::Parse { .. })));
        }
    }

    #[test]
    fn round_trip_preserves_function() {
        for text in [
            HALF_ADDER,
            "aag 3 2 0 1 1\n2\n4\n6 3 5\n6\n",
            "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n",
        ] {
            // Normalize section order: outputs precede ands in one case
            // above? Keep only well-formed inputs.
            let Ok(nl) = parse_aag(text) else { continue };
            let emitted = write_aag(&nl).unwrap();
            let back = parse_aag(&emitted).unwrap();
            let n = nl.inputs().len();
            for p in 0..(1u32 << n) {
                let v: Vec<bool> = (0..n).map(|k| (p >> k) & 1 == 1).collect();
                assert_eq!(nl.evaluate(&v), back.evaluate(&v), "pattern {p}");
            }
        }
    }

    #[test]
    fn write_rejects_non_aig_gates() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate2("g", Bf2::XOR, a, c);
        b.output(g);
        let nl = b.finish().unwrap();
        assert!(matches!(write_aag(&nl), Err(LogicError::Validation(_))));
    }

    #[test]
    fn write_emits_symbols_and_parses_back_names() {
        let nl = parse_aag(HALF_ADDER).unwrap();
        let emitted = write_aag(&nl).unwrap();
        assert!(emitted.contains("i0 x"));
        let back = parse_aag(&emitted).unwrap();
        assert_eq!(back.node(back.inputs()[0]).name, "x");
    }
}
