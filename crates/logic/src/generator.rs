//! Seeded synthetic netlist generation.
//!
//! The paper evaluates on licensed benchmark suites (ISCAS-85, MCNC,
//! ITC-99, EPFL, IBM superblue) whose netlists are not redistributable
//! artifacts of this reproduction. [`NetlistGenerator`] synthesizes random
//! DAG netlists with prescribed PI/PO/gate counts and a tunable depth
//! profile, preserving the properties the paper's experiments actually
//! depend on: key count grows with protected-gate count, cones are wide and
//! deep, and (for the timing study) path-delay distributions are biased —
//! many short paths, few long critical ones (Fig. 6).

use crate::bf2::Bf2;
use crate::builder::NetlistBuilder;
use crate::error::LogicError;
use crate::netlist::{Netlist, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Target gate count of one [`Topology::Local`] placement tile: random
/// fanins stay inside the gate's own tile, so no influence cone can
/// outgrow a tile plus the primary inputs it reads.
pub const LOCAL_WINDOW: usize = 1024;

/// Probability that a [`Topology::Local`] random fanin escapes its tile
/// to a uniformly-drawn **primary input** — the rare long wire of a
/// Rent-style wirelength distribution. Long wires route global signals
/// (resets, selects), not another tile's internal nets, which is what
/// keeps tile cones from chaining into each other.
const GLOBAL_EDGE_PROB: f64 = 0.02;

/// How the generator's *random* fanin draws are distributed over the
/// already-created nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Historical uniform-random fanins over every prior node. At
    /// superblue scale this makes any gate's influence percolate to
    /// most outputs — unlike placed netlists.
    #[default]
    Uniform,
    /// Placed-netlist locality: gates are partitioned round-robin into
    /// tiles of ~[`LOCAL_WINDOW`] gates, each tile drawing fanins from
    /// its own nodes (global-edge escapes reach primary inputs only),
    /// so a cloaked cell's influence cone is bounded by one tile —
    /// cone-of-influence reductions win without cone-aware placement.
    Local,
}

impl Topology {
    /// Parses the spec-file spelling: `"uniform"` or `"local"`.
    pub fn parse(s: &str) -> Option<Topology> {
        match s {
            "uniform" => Some(Topology::Uniform),
            "local" => Some(Topology::Local),
            _ => None,
        }
    }

    /// The spec-file spelling accepted by [`Topology::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Topology::Uniform => "uniform",
            Topology::Local => "local",
        }
    }
}

/// Configuration of the random netlist generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Design name.
    pub name: String,
    /// Number of primary inputs (≥ 2).
    pub inputs: usize,
    /// Number of primary outputs (≥ 1).
    pub outputs: usize,
    /// Number of two-input gates (≥ outputs).
    pub gates: usize,
    /// RNG seed (same seed → identical netlist).
    pub seed: u64,
    /// Functions to draw from, with weights.
    pub functions: Vec<(Bf2, f64)>,
    /// Probability that a gate extends the most recently created node,
    /// producing long chains (0 → shallow and bushy, →1 → one deep chain).
    pub chain_bias: f64,
    /// Probability of drawing a fanin from the not-yet-used pool
    /// (keeps dead logic low).
    pub reuse_pressure: f64,
    /// Distribution of the random fanin draws ([`Topology::Uniform`]
    /// preserves the historical RNG stream bit-for-bit).
    pub topology: Topology,
}

impl GeneratorConfig {
    /// A reasonable default profile for SAT-attack workloads.
    pub fn new(name: impl Into<String>, inputs: usize, outputs: usize, gates: usize) -> Self {
        GeneratorConfig {
            name: name.into(),
            inputs,
            outputs,
            gates,
            seed: 1,
            functions: Bf2::STANDARD.iter().map(|&f| (f, 1.0)).collect(),
            chain_bias: 0.12,
            reuse_pressure: 0.65,
            topology: Topology::Uniform,
        }
    }

    /// Overrides the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the fanin topology (builder style).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Overrides the chain bias (builder style).
    pub fn with_chain_bias(mut self, bias: f64) -> Self {
        self.chain_bias = bias;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] when counts are inconsistent.
    pub fn validate(&self) -> Result<(), LogicError> {
        if self.inputs < 2 {
            return Err(LogicError::Validation("need at least 2 inputs".into()));
        }
        if self.outputs == 0 {
            return Err(LogicError::Validation("need at least 1 output".into()));
        }
        if self.gates < self.outputs {
            return Err(LogicError::Validation(format!(
                "{} gates cannot drive {} distinct outputs",
                self.gates, self.outputs
            )));
        }
        if self.functions.is_empty() {
            return Err(LogicError::Validation("function set is empty".into()));
        }
        if !(0.0..=1.0).contains(&self.chain_bias) || !(0.0..=1.0).contains(&self.reuse_pressure) {
            return Err(LogicError::Validation(
                "probabilities must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// The generator itself.
#[derive(Debug, Clone)]
pub struct NetlistGenerator {
    config: GeneratorConfig,
}

impl NetlistGenerator {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Validation`] if the configuration is
    /// inconsistent.
    pub fn new(config: GeneratorConfig) -> Result<Self, LogicError> {
        config.validate()?;
        Ok(NetlistGenerator { config })
    }

    /// The configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    fn pick_function(&self, rng: &mut StdRng) -> Bf2 {
        let total: f64 = self.config.functions.iter().map(|(_, w)| w).sum();
        let mut t = rng.gen_range(0.0..total);
        for &(f, w) in &self.config.functions {
            if t < w {
                return f;
            }
            t -= w;
        }
        self.config.functions[0].0
    }

    /// Generates the netlist.
    pub fn generate(&self) -> Netlist {
        if self.config.topology == Topology::Local {
            return self.generate_local();
        }
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut b = NetlistBuilder::new(cfg.name.clone());

        let mut nodes: Vec<NodeId> = Vec::with_capacity(cfg.inputs + cfg.gates);
        for i in 0..cfg.inputs {
            nodes.push(b.input(format!("pi{i}")));
        }
        // FIFO pool of nodes that currently have no fanout. Consuming the
        // *oldest* dangling node first yields balanced, shallow structure
        // (depth ~ log gates); `chain_bias` explicitly extends the newest
        // node instead, growing long paths.
        let mut unused: std::collections::VecDeque<NodeId> = nodes.iter().copied().collect();
        let mut has_fanout = vec![false; cfg.inputs + cfg.gates];

        for g in 0..cfg.gates {
            let f = self.pick_function(&mut rng);
            // Keep the dangling pool tracking the number of outputs we will
            // eventually need: while it is larger, consume an extra fanin
            // from it so dead logic stays negligible.
            let want_shrink = unused.len() > cfg.outputs + 4;
            let a = if rng.gen_bool(cfg.chain_bias) {
                *nodes.last().expect("nodes nonempty")
            } else if !unused.is_empty() && rng.gen_bool(cfg.reuse_pressure) {
                unused.pop_front().expect("checked nonempty")
            } else {
                nodes[rng.gen_range(0..nodes.len())]
            };
            let mut bb = if want_shrink && !unused.is_empty() && rng.gen_bool(0.5) {
                unused.pop_front().expect("checked nonempty")
            } else {
                nodes[rng.gen_range(0..nodes.len())]
            };
            // Avoid a == b (degenerate gates weaken SAT workloads).
            let mut guard = 0;
            while bb == a && guard < 8 {
                bb = nodes[rng.gen_range(0..nodes.len())];
                guard += 1;
            }
            for id in [a, bb] {
                has_fanout[id.index()] = true;
            }
            let id = b.gate2(format!("g{g}"), f, a, bb);
            nodes.push(id);
            unused.push_back(id);
            has_fanout.push(false);
            // Lazily drop stale entries (nodes that gained fanout since
            // being queued) from the front of the pool.
            while let Some(&front) = unused.front() {
                if has_fanout[front.index()] {
                    unused.pop_front();
                } else {
                    break;
                }
            }
        }

        // Outputs: dangling gates first (minimizes dead logic), then random
        // gates to reach the exact count.
        let gate_start = cfg.inputs;
        let mut dangling: Vec<NodeId> = unused
            .into_iter()
            .filter(|id| id.index() >= gate_start && !has_fanout[id.index()])
            .collect();
        dangling.shuffle(&mut rng);
        let mut outs: Vec<NodeId> = Vec::with_capacity(cfg.outputs);
        while outs.len() < cfg.outputs {
            if let Some(id) = dangling.pop() {
                outs.push(id);
            } else {
                // Draw random distinct gates.
                let id = nodes[rng.gen_range(gate_start..nodes.len())];
                if !outs.contains(&id) {
                    outs.push(id);
                }
            }
        }
        for id in outs {
            b.output(id);
        }
        b.finish().expect("generator maintains invariants")
    }

    /// The [`Topology::Local`] generator: the same chain-bias /
    /// reuse-pool / random-draw recipe, run per **placement tile**.
    /// Gates are dealt round-robin into `⌈gates / LOCAL_WINDOW⌉` tiles;
    /// each tile keeps its own node list and dangling pool, and every
    /// random draw stays inside the gate's tile except the
    /// [`GLOBAL_EDGE_PROB`] escape to a uniformly-drawn primary input.
    /// Inter-tile edges therefore only ever originate at primary
    /// inputs, so a gate's influence cone — and the fanin cone of the
    /// outputs it reaches — is bounded by one tile plus the inputs
    /// feeding it, like a placed netlist's module structure.
    fn generate_local(&self) -> Netlist {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut b = NetlistBuilder::new(cfg.name.clone());

        let pis: Vec<NodeId> = (0..cfg.inputs).map(|i| b.input(format!("pi{i}"))).collect();
        let tiles = cfg.gates.div_ceil(LOCAL_WINDOW).max(1);
        // Each tile's visible nodes, seeded with its round-robin share
        // of the primary inputs (plus shared fallbacks so every tile
        // starts with at least two drawable nodes).
        let mut tile_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); tiles];
        for (i, &pi) in pis.iter().enumerate() {
            tile_nodes[i % tiles].push(pi);
        }
        for (k, nodes) in tile_nodes.iter_mut().enumerate() {
            while nodes.len() < 2 {
                nodes.push(pis[(k + nodes.len()) % pis.len()]);
            }
        }
        let mut tile_unused: Vec<std::collections::VecDeque<NodeId>> = tile_nodes
            .iter()
            .map(|nodes| nodes.iter().copied().collect())
            .collect();
        let mut has_fanout = vec![false; cfg.inputs + cfg.gates];
        // Per-tile dangling target, mirroring the global `outputs + 4`
        // pool bound of the uniform path.
        let shrink_at = cfg.outputs.div_ceil(tiles) + 4;

        let mut all_gates: Vec<NodeId> = Vec::with_capacity(cfg.gates);
        for g in 0..cfg.gates {
            let k = g % tiles;
            let f = self.pick_function(&mut rng);
            let draw = |rng: &mut StdRng, nodes: &[NodeId]| -> NodeId {
                if rng.gen_bool(GLOBAL_EDGE_PROB) {
                    pis[rng.gen_range(0..pis.len())]
                } else {
                    nodes[rng.gen_range(0..nodes.len())]
                }
            };
            let want_shrink = tile_unused[k].len() > shrink_at;
            let a = if rng.gen_bool(cfg.chain_bias) {
                *tile_nodes[k].last().expect("tiles are seeded")
            } else if !tile_unused[k].is_empty() && rng.gen_bool(cfg.reuse_pressure) {
                tile_unused[k].pop_front().expect("checked nonempty")
            } else {
                draw(&mut rng, &tile_nodes[k])
            };
            let mut bb = if want_shrink && !tile_unused[k].is_empty() && rng.gen_bool(0.5) {
                tile_unused[k].pop_front().expect("checked nonempty")
            } else {
                draw(&mut rng, &tile_nodes[k])
            };
            let mut guard = 0;
            while bb == a && guard < 8 {
                bb = draw(&mut rng, &tile_nodes[k]);
                guard += 1;
            }
            for id in [a, bb] {
                has_fanout[id.index()] = true;
            }
            let id = b.gate2(format!("g{g}"), f, a, bb);
            all_gates.push(id);
            tile_nodes[k].push(id);
            tile_unused[k].push_back(id);
            while let Some(&front) = tile_unused[k].front() {
                if has_fanout[front.index()] {
                    tile_unused[k].pop_front();
                } else {
                    break;
                }
            }
        }

        // Outputs: dangling gates first (walk tiles round-robin so every
        // tile contributes), then random distinct gates.
        let gate_start = cfg.inputs;
        let mut dangling: Vec<NodeId> = tile_unused
            .into_iter()
            .flatten()
            .filter(|id| id.index() >= gate_start && !has_fanout[id.index()])
            .collect();
        dangling.shuffle(&mut rng);
        let mut outs: Vec<NodeId> = Vec::with_capacity(cfg.outputs);
        while outs.len() < cfg.outputs {
            if let Some(id) = dangling.pop() {
                outs.push(id);
            } else {
                let id = all_gates[rng.gen_range(0..all_gates.len())];
                if !outs.contains(&id) {
                    outs.push(id);
                }
            }
        }
        for id in outs {
            b.output(id);
        }
        b.finish().expect("generator maintains invariants")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetlistStats;

    #[test]
    fn counts_are_exact() {
        let cfg = GeneratorConfig::new("t", 12, 7, 120).with_seed(3);
        let nl = NetlistGenerator::new(cfg).unwrap().generate();
        assert_eq!(nl.inputs().len(), 12);
        assert_eq!(nl.outputs().len(), 7);
        assert_eq!(nl.gate_count(), 120);
        nl.check().unwrap();
    }

    #[test]
    fn same_seed_same_netlist() {
        let cfg = GeneratorConfig::new("t", 8, 4, 60).with_seed(9);
        let a = NetlistGenerator::new(cfg.clone()).unwrap().generate();
        let b = NetlistGenerator::new(cfg).unwrap().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_netlist() {
        let a = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 60).with_seed(1))
            .unwrap()
            .generate();
        let b = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 60).with_seed(2))
            .unwrap()
            .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn chain_bias_increases_depth() {
        let shallow = NetlistGenerator::new(
            GeneratorConfig::new("t", 16, 8, 400)
                .with_seed(5)
                .with_chain_bias(0.0),
        )
        .unwrap()
        .generate();
        let deep = NetlistGenerator::new(
            GeneratorConfig::new("t", 16, 8, 400)
                .with_seed(5)
                .with_chain_bias(0.8),
        )
        .unwrap()
        .generate();
        assert!(
            deep.depth() > 2 * shallow.depth(),
            "deep {} vs shallow {}",
            deep.depth(),
            shallow.depth()
        );
    }

    #[test]
    fn dead_logic_stays_small() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 32, 16, 800).with_seed(7))
            .unwrap()
            .generate();
        let stats = NetlistStats::compute(&nl);
        assert!(
            (stats.dead_gates as f64) < 0.02 * 800.0,
            "{} dead gates",
            stats.dead_gates
        );
    }

    #[test]
    fn outputs_are_distinct() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 6, 6, 40).with_seed(2))
            .unwrap()
            .generate();
        let mut outs = nl.outputs().to_vec();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 6);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(NetlistGenerator::new(GeneratorConfig::new("t", 1, 1, 4)).is_err());
        assert!(NetlistGenerator::new(GeneratorConfig::new("t", 4, 0, 4)).is_err());
        assert!(NetlistGenerator::new(GeneratorConfig::new("t", 4, 9, 4)).is_err());
        let mut cfg = GeneratorConfig::new("t", 4, 2, 8);
        cfg.functions.clear();
        assert!(NetlistGenerator::new(cfg).is_err());
    }

    /// Fanin-cone size of the outputs influenced by `pick` (the
    /// sb1_smoke taint/cone scan): forward taint, affected outputs,
    /// reverse sweep. `None` when nothing or everything is affected.
    fn influence_cone(nl: &Netlist, pick: NodeId) -> Option<usize> {
        let mut tainted = vec![false; nl.len()];
        tainted[pick.index()] = true;
        for i in pick.index()..nl.len() {
            if !tainted[i] && nl.fanins(NodeId(i as u32)).any(|f| tainted[f.index()]) {
                tainted[i] = true;
            }
        }
        let affected: Vec<NodeId> = nl
            .outputs()
            .iter()
            .copied()
            .filter(|o| tainted[o.index()])
            .collect();
        if affected.is_empty() || affected.len() == nl.outputs().len() {
            return None;
        }
        let mut need = vec![false; nl.len()];
        for &o in &affected {
            need[o.index()] = true;
        }
        for i in (0..nl.len()).rev() {
            if need[i] {
                for f in nl.fanins(NodeId(i as u32)) {
                    need[f.index()] = true;
                }
            }
        }
        Some(need.iter().filter(|&&x| x).count())
    }

    #[test]
    fn local_topology_keeps_influence_cones_narrow() {
        // The superblue percolation fix: at a scale where the trailing
        // window binds, a random gate's affected-output fanin cone must
        // be a small slice under `local` and a large one under
        // `uniform` — same counts, same seed, topology is the only
        // difference. `local` also still produces valid topologically-
        // ordered DAGs with the exact configured shape.
        let base = GeneratorConfig::new("topo", 512, 256, 20_000).with_seed(3);
        let uniform = NetlistGenerator::new(base.clone()).unwrap().generate();
        let local = NetlistGenerator::new(base.with_topology(Topology::Local))
            .unwrap()
            .generate();
        for nl in [&uniform, &local] {
            nl.check().unwrap();
            assert_eq!(nl.inputs().len(), 512);
            assert_eq!(nl.outputs().len(), 256);
            assert_eq!(nl.gate_count(), 20_000);
        }

        let mean_cone = |nl: &Netlist| -> f64 {
            let picks: Vec<NodeId> = (0..16).map(|k| NodeId((512 + k * 1_117) as u32)).collect();
            let cones: Vec<usize> = picks
                .iter()
                .filter_map(|&p| influence_cone(nl, p))
                .collect();
            assert!(!cones.is_empty(), "no proper cone in {}", nl.name());
            cones.iter().sum::<usize>() as f64 / cones.len() as f64
        };
        let u = mean_cone(&uniform);
        let l = mean_cone(&local);
        assert!(
            l * 4.0 < u,
            "local cones should be ≥4× narrower: local {l:.0} vs uniform {u:.0}"
        );
    }

    #[test]
    fn topology_parse_round_trips_and_uniform_stream_is_unchanged() {
        for t in [Topology::Uniform, Topology::Local] {
            assert_eq!(Topology::parse(t.name()), Some(t));
        }
        assert_eq!(Topology::parse("placed"), None);
        // An explicit Uniform topology is the exact default object, so
        // every historical seeded netlist is reproduced bit-for-bit.
        let cfg = GeneratorConfig::new("t", 8, 4, 60).with_seed(9);
        assert_eq!(cfg.clone().with_topology(Topology::Uniform), cfg);
    }

    #[test]
    fn generated_netlists_evaluate() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 10, 5, 100).with_seed(11))
            .unwrap()
            .generate();
        let zeros = vec![false; 10];
        let ones = vec![true; 10];
        assert_eq!(nl.evaluate(&zeros).len(), 5);
        assert_eq!(nl.evaluate(&ones).len(), 5);
    }
}
