//! Netlist cleanup passes: constant folding, buffer-chain collapsing, and
//! dead-logic sweeping.
//!
//! Camouflaging transforms (complement rule, XOR decomposition) insert
//! visible inverters and helper gates; resolving a keyed design can leave
//! constants and pass-through cells behind. [`optimize`] normalizes such
//! netlists while provably preserving their function (tested by random
//! simulation and, in the integration suite, by SAT equivalence).

use crate::bf2::{Bf1, Bf2};
use crate::builder::NetlistBuilder;
use crate::netlist::{Netlist, NodeId, NodeKind};

/// What a signal is known to be during folding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fold {
    /// Known constant.
    Const(bool),
    /// Equal to another (already emitted) node, possibly inverted.
    Alias { node: NodeId, inverted: bool },
}

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptReport {
    /// Gates whose output folded to a constant.
    pub folded_constants: usize,
    /// Buffer/inverter (or degenerate two-input) gates collapsed to
    /// aliases of their fanin.
    pub collapsed: usize,
    /// Gates removed because nothing reachable from an output used them.
    pub swept_dead: usize,
}

/// Optimizes `nl`: folds constants through the cone, collapses
/// buffers/inverters and degenerate two-input gates into wire aliases, and
/// sweeps unreachable logic. The primary-input and primary-output
/// interfaces are preserved exactly (an output that folds to a constant is
/// re-materialized as a constant driver).
pub fn optimize(nl: &Netlist) -> (Netlist, OptReport) {
    let mut report = OptReport::default();
    let mut b = NetlistBuilder::new(nl.name().to_string());

    // Reachability: which nodes feed an output.
    let mut live = vec![false; nl.len()];
    let mut stack: Vec<NodeId> = nl.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        stack.extend(nl.node(id).kind.fanins());
    }

    // Forward pass with folding. `folds[i]` describes node i in terms of
    // the *new* netlist; `emitted[i]` is its id when it needed a real node.
    let mut folds: Vec<Option<Fold>> = vec![None; nl.len()];
    let mut emitted: Vec<Option<NodeId>> = vec![None; nl.len()];

    // Resolve an old node to (new node, inverted, const).
    let resolve = |folds: &[Option<Fold>],
                   emitted: &[Option<NodeId>],
                   id: NodeId|
     -> Result<(NodeId, bool), bool> {
        match folds[id.index()] {
            Some(Fold::Const(c)) => Err(c),
            Some(Fold::Alias { node, inverted }) => Ok((node, inverted)),
            None => Ok((emitted[id.index()].expect("live fanin emitted"), false)),
        }
    };

    for (i, node) in nl.nodes().enumerate() {
        if !live[i] {
            report.swept_dead += node.kind.is_gate() as usize;
            continue;
        }
        match node.kind {
            NodeKind::Input => {
                emitted[i] = Some(b.input(node.name));
            }
            NodeKind::Const(c) => {
                folds[i] = Some(Fold::Const(c));
            }
            NodeKind::Gate1 { f, a } => match (f, resolve(&folds, &emitted, a)) {
                (Bf1::Const0, _) => {
                    folds[i] = Some(Fold::Const(false));
                    report.folded_constants += 1;
                }
                (Bf1::Const1, _) => {
                    folds[i] = Some(Fold::Const(true));
                    report.folded_constants += 1;
                }
                (g, Err(c)) => {
                    folds[i] = Some(Fold::Const(g.eval(c)));
                    report.folded_constants += 1;
                }
                (Bf1::Buf, Ok((n, inv))) => {
                    folds[i] = Some(Fold::Alias {
                        node: n,
                        inverted: inv,
                    });
                    report.collapsed += 1;
                }
                (Bf1::Inv, Ok((n, inv))) => {
                    folds[i] = Some(Fold::Alias {
                        node: n,
                        inverted: !inv,
                    });
                    report.collapsed += 1;
                }
            },
            NodeKind::Gate2 { f, a, b: bb } => {
                let ra = resolve(&folds, &emitted, a);
                let rb = resolve(&folds, &emitted, bb);
                // Absorb alias inversions into the function table.
                let (fa, ca) = match ra {
                    Err(c) => (None, Some(c)),
                    Ok((n, inv)) => (Some((n, inv)), None),
                };
                let (fb, cb) = match rb {
                    Err(c) => (None, Some(c)),
                    Ok((n, inv)) => (Some((n, inv)), None),
                };
                let mut g = f;
                if let Some((_, true)) = fa {
                    g = g.negate_a();
                }
                if let Some((_, true)) = fb {
                    g = g.negate_b();
                }
                match (fa, ca, fb, cb) {
                    (None, Some(va), None, Some(vb)) => {
                        folds[i] = Some(Fold::Const(g.eval(va, vb)));
                        report.folded_constants += 1;
                    }
                    (None, Some(va), Some((nb, _)), None) => {
                        let f0 = g.eval(va, false);
                        let f1 = g.eval(va, true);
                        folds[i] = Some(partial(f0, f1, nb, &mut report));
                    }
                    (Some((na, _)), None, None, Some(vb)) => {
                        let f0 = g.eval(false, vb);
                        let f1 = g.eval(true, vb);
                        folds[i] = Some(partial(f0, f1, na, &mut report));
                    }
                    (Some((na, _)), None, Some((nb, _)), None) => {
                        if g.is_constant() {
                            folds[i] = Some(Fold::Const(g == Bf2::TRUE));
                            report.folded_constants += 1;
                        } else if na == nb {
                            // Both operands are the same signal: the gate
                            // degenerates to its diagonal g(v, v).
                            folds[i] = Some(partial(
                                g.eval(false, false),
                                g.eval(true, true),
                                na,
                                &mut report,
                            ));
                        } else if g.ignores_b() {
                            folds[i] = Some(partial(
                                g.eval(false, false),
                                g.eval(true, false),
                                na,
                                &mut report,
                            ));
                        } else if g.ignores_a() {
                            folds[i] = Some(partial(
                                g.eval(false, false),
                                g.eval(false, true),
                                nb,
                                &mut report,
                            ));
                        } else {
                            emitted[i] = Some(b.gate2(node.name, g, na, nb));
                        }
                    }
                    _ => unreachable!("each operand is exactly const or alias"),
                }
            }
        }
    }

    // Re-materialize outputs.
    for &o in nl.outputs() {
        let id = match folds[o.index()] {
            Some(Fold::Const(c)) => b.constant(c),
            Some(Fold::Alias {
                node,
                inverted: false,
            }) => node,
            Some(Fold::Alias {
                node,
                inverted: true,
            }) => b.gate1_auto(Bf1::Inv, node),
            None => emitted[o.index()].expect("live output emitted"),
        };
        b.output(id);
    }
    (b.finish().expect("optimizer preserves invariants"), report)
}

/// [`optimize`] for keyed/camouflaged designs: nodes listed in `protected`
/// are emitted **verbatim** — same kind and arity, same fanin structure —
/// and are never folded, aliased away, or swept. A protected node's
/// *visible* function is not trusted (a camouflaged cell may realize any
/// candidate function at attack time), so the rewrite must preserve the
/// design's function under *every* substitution of the protected nodes'
/// functions, not just the visible one. Concretely:
///
/// - a protected gate's fanins are materialized as real nodes: alias
///   inversions become explicit inverters instead of being absorbed into
///   the gate's function table, and constant fanins become constant
///   drivers;
/// - folding never looks *through* a protected node's output (it is a
///   real emitted node, never a [`Fold`]);
/// - protected nodes are liveness roots alongside the primary outputs.
///
/// The primary-input and primary-output interfaces are preserved exactly
/// and in order (every input is re-emitted even if unused). Returns the
/// optimized netlist, the run statistics, and an old-id → new-id map
/// (`Some` for every node that survives as a real node; protected nodes
/// always do).
pub fn optimize_protected(
    nl: &Netlist,
    protected: &[NodeId],
) -> (Netlist, OptReport, Vec<Option<NodeId>>) {
    let mut report = OptReport::default();
    let mut b = NetlistBuilder::new(nl.name().to_string());
    let mut is_protected = vec![false; nl.len()];
    for &p in protected {
        is_protected[p.index()] = true;
    }

    // Reachability from the outputs *and* the protected nodes.
    let mut live = vec![false; nl.len()];
    let mut stack: Vec<NodeId> = nl.outputs().to_vec();
    stack.extend_from_slice(protected);
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        stack.extend(nl.node(id).kind.fanins());
    }

    let mut folds: Vec<Option<Fold>> = vec![None; nl.len()];
    let mut emitted: Vec<Option<NodeId>> = vec![None; nl.len()];
    // Materialization caches so a shared inverted alias or constant fanin
    // of several protected gates is built once.
    let mut inv_of: Vec<Option<NodeId>> = Vec::new();
    let mut const_of: [Option<NodeId>; 2] = [None, None];

    let resolve = |folds: &[Option<Fold>],
                   emitted: &[Option<NodeId>],
                   id: NodeId|
     -> Result<(NodeId, bool), bool> {
        match folds[id.index()] {
            Some(Fold::Const(c)) => Err(c),
            Some(Fold::Alias { node, inverted }) => Ok((node, inverted)),
            None => Ok((emitted[id.index()].expect("live fanin emitted"), false)),
        }
    };
    // Resolve an old fanin of a *protected* gate to a concrete new node,
    // materializing what plain folding would have absorbed.
    fn concrete(
        b: &mut NetlistBuilder,
        inv_of: &mut Vec<Option<NodeId>>,
        const_of: &mut [Option<NodeId>; 2],
        r: Result<(NodeId, bool), bool>,
    ) -> NodeId {
        match r {
            Err(c) => *const_of[c as usize].get_or_insert_with(|| b.constant(c)),
            Ok((n, false)) => n,
            Ok((n, true)) => {
                if inv_of.len() <= n.index() {
                    inv_of.resize(n.index() + 1, None);
                }
                *inv_of[n.index()].get_or_insert_with(|| b.gate1_auto(Bf1::Inv, n))
            }
        }
    }

    for (i, node) in nl.nodes().enumerate() {
        if let NodeKind::Input = node.kind {
            // Interface invariant: every input survives, in order.
            emitted[i] = Some(b.input(node.name));
            continue;
        }
        if !live[i] {
            report.swept_dead += node.kind.is_gate() as usize;
            continue;
        }
        if is_protected[i] {
            let id = match node.kind {
                NodeKind::Input => unreachable!("inputs handled above"),
                NodeKind::Const(c) => b.constant(c),
                NodeKind::Gate1 { f, a } => {
                    let ra = resolve(&folds, &emitted, a);
                    let na = concrete(&mut b, &mut inv_of, &mut const_of, ra);
                    b.gate1(node.name, f, na)
                }
                NodeKind::Gate2 { f, a, b: bb } => {
                    let ra = resolve(&folds, &emitted, a);
                    let rb = resolve(&folds, &emitted, bb);
                    let na = concrete(&mut b, &mut inv_of, &mut const_of, ra);
                    let nb = concrete(&mut b, &mut inv_of, &mut const_of, rb);
                    b.gate2(node.name, f, na, nb)
                }
            };
            emitted[i] = Some(id);
            continue;
        }
        match node.kind {
            NodeKind::Input => unreachable!("inputs handled above"),
            NodeKind::Const(c) => {
                folds[i] = Some(Fold::Const(c));
            }
            NodeKind::Gate1 { f, a } => match (f, resolve(&folds, &emitted, a)) {
                (Bf1::Const0, _) => {
                    folds[i] = Some(Fold::Const(false));
                    report.folded_constants += 1;
                }
                (Bf1::Const1, _) => {
                    folds[i] = Some(Fold::Const(true));
                    report.folded_constants += 1;
                }
                (g, Err(c)) => {
                    folds[i] = Some(Fold::Const(g.eval(c)));
                    report.folded_constants += 1;
                }
                (Bf1::Buf, Ok((n, inv))) => {
                    folds[i] = Some(Fold::Alias {
                        node: n,
                        inverted: inv,
                    });
                    report.collapsed += 1;
                }
                (Bf1::Inv, Ok((n, inv))) => {
                    folds[i] = Some(Fold::Alias {
                        node: n,
                        inverted: !inv,
                    });
                    report.collapsed += 1;
                }
            },
            NodeKind::Gate2 { f, a, b: bb } => {
                let ra = resolve(&folds, &emitted, a);
                let rb = resolve(&folds, &emitted, bb);
                let (fa, ca) = match ra {
                    Err(c) => (None, Some(c)),
                    Ok((n, inv)) => (Some((n, inv)), None),
                };
                let (fb, cb) = match rb {
                    Err(c) => (None, Some(c)),
                    Ok((n, inv)) => (Some((n, inv)), None),
                };
                let mut g = f;
                if let Some((_, true)) = fa {
                    g = g.negate_a();
                }
                if let Some((_, true)) = fb {
                    g = g.negate_b();
                }
                match (fa, ca, fb, cb) {
                    (None, Some(va), None, Some(vb)) => {
                        folds[i] = Some(Fold::Const(g.eval(va, vb)));
                        report.folded_constants += 1;
                    }
                    (None, Some(va), Some((nb, _)), None) => {
                        let f0 = g.eval(va, false);
                        let f1 = g.eval(va, true);
                        folds[i] = Some(partial(f0, f1, nb, &mut report));
                    }
                    (Some((na, _)), None, None, Some(vb)) => {
                        let f0 = g.eval(false, vb);
                        let f1 = g.eval(true, vb);
                        folds[i] = Some(partial(f0, f1, na, &mut report));
                    }
                    (Some((na, _)), None, Some((nb, _)), None) => {
                        if g.is_constant() {
                            folds[i] = Some(Fold::Const(g == Bf2::TRUE));
                            report.folded_constants += 1;
                        } else if na == nb {
                            folds[i] = Some(partial(
                                g.eval(false, false),
                                g.eval(true, true),
                                na,
                                &mut report,
                            ));
                        } else if g.ignores_b() {
                            folds[i] = Some(partial(
                                g.eval(false, false),
                                g.eval(true, false),
                                na,
                                &mut report,
                            ));
                        } else if g.ignores_a() {
                            folds[i] = Some(partial(
                                g.eval(false, false),
                                g.eval(false, true),
                                nb,
                                &mut report,
                            ));
                        } else {
                            emitted[i] = Some(b.gate2(node.name, g, na, nb));
                        }
                    }
                    _ => unreachable!("each operand is exactly const or alias"),
                }
            }
        }
    }

    for &o in nl.outputs() {
        let id = match folds[o.index()] {
            Some(Fold::Const(c)) => b.constant(c),
            Some(Fold::Alias {
                node,
                inverted: false,
            }) => node,
            Some(Fold::Alias {
                node,
                inverted: true,
            }) => b.gate1_auto(Bf1::Inv, node),
            None => emitted[o.index()].expect("live output emitted"),
        };
        b.output(id);
    }
    let out = b.finish().expect("optimizer preserves invariants");
    (out, report, emitted)
}

fn partial(f0: bool, f1: bool, n: NodeId, report: &mut OptReport) -> Fold {
    match (f0, f1) {
        (false, false) => {
            report.folded_constants += 1;
            Fold::Const(false)
        }
        (true, true) => {
            report.folded_constants += 1;
            Fold::Const(true)
        }
        (false, true) => {
            report.collapsed += 1;
            Fold::Alias {
                node: n,
                inverted: false,
            }
        }
        (true, false) => {
            report.collapsed += 1;
            Fold::Alias {
                node: n,
                inverted: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, NetlistGenerator};
    use crate::sim::random_equivalence_check;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn collapses_buffer_chains() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.gate2("g", Bf2::AND, x, y);
        let b1 = b.gate1("b1", Bf1::Buf, g);
        let b2 = b.gate1("b2", Bf1::Buf, b1);
        let n1 = b.gate1("n1", Bf1::Inv, b2);
        let n2 = b.gate1("n2", Bf1::Inv, n1);
        b.output(n2);
        let nl = b.finish().unwrap();
        let (opt, report) = optimize(&nl);
        assert_eq!(opt.gate_count(), 1, "only the AND survives");
        assert_eq!(report.collapsed, 4);
        for va in [false, true] {
            for vb in [false, true] {
                assert_eq!(opt.evaluate(&[va, vb]), nl.evaluate(&[va, vb]));
            }
        }
    }

    #[test]
    fn folds_constants_through_the_cone() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let one = b.constant(true);
        let g1 = b.gate2("g1", Bf2::AND, x, one); // = x
        let g2 = b.gate2("g2", Bf2::XOR, g1, one); // = !x
        let g3 = b.gate2("g3", Bf2::OR, g2, one); // = 1
        b.output(g2);
        b.output(g3);
        let nl = b.finish().unwrap();
        let (opt, _) = optimize(&nl);
        // g3 is constant true; g2 is an inverter alias of x.
        assert!(opt.gate_count() <= 1);
        assert_eq!(opt.evaluate(&[false]), vec![true, true]);
        assert_eq!(opt.evaluate(&[true]), vec![false, true]);
    }

    #[test]
    fn sweeps_dead_logic() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let live = b.gate2("live", Bf2::NAND, x, y);
        let d1 = b.gate2("dead1", Bf2::OR, x, y);
        let _d2 = b.gate2("dead2", Bf2::XOR, d1, y);
        b.output(live);
        let nl = b.finish().unwrap();
        let (opt, report) = optimize(&nl);
        assert_eq!(report.swept_dead, 2);
        assert_eq!(opt.gate_count(), 1);
    }

    #[test]
    fn inversion_is_absorbed_into_downstream_gates() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let nx = b.gate1("nx", Bf1::Inv, x);
        let g = b.gate2("g", Bf2::AND, nx, y); // = !x & y
        b.output(g);
        let nl = b.finish().unwrap();
        let (opt, _) = optimize(&nl);
        // The inverter disappears; g becomes NOT_A_AND_B.
        assert_eq!(opt.gate_count(), 1);
        for va in [false, true] {
            for vb in [false, true] {
                assert_eq!(opt.evaluate(&[va, vb]), vec![!va && vb]);
            }
        }
    }

    #[test]
    fn random_netlists_stay_equivalent() {
        for seed in 0..20 {
            let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 80).with_seed(seed))
                .unwrap()
                .generate();
            let (opt, _) = optimize(&nl);
            opt.check().unwrap();
            assert_eq!(opt.inputs().len(), 8);
            assert_eq!(opt.outputs().len(), 4);
            let mut rng = StdRng::seed_from_u64(seed);
            assert_eq!(
                random_equivalence_check(&nl, &opt, 4, &mut rng).unwrap(),
                None,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn optimizing_twice_is_idempotent_in_size() {
        let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 60).with_seed(5))
            .unwrap()
            .generate();
        let (once, _) = optimize(&nl);
        let (twice, report) = optimize(&once);
        assert_eq!(once.gate_count(), twice.gate_count());
        assert_eq!(report.folded_constants, 0);
    }

    #[test]
    fn protected_nodes_survive_verbatim() {
        // x --inv--> nx --AND(protected)--> g --buf--> out
        // Plain optimize would absorb the inverter into the AND and
        // collapse the buffer; the protected AND must keep an explicit
        // inverter fanin and its own node.
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let nx = b.gate1("nx", Bf1::Inv, x);
        let g = b.gate2("g", Bf2::AND, nx, y);
        let buf = b.gate1("buf", Bf1::Buf, g);
        b.output(buf);
        let nl = b.finish().unwrap();
        let (opt, _, map) = optimize_protected(&nl, &[g]);
        let new_g = map[g.index()].expect("protected node survives");
        // The protected node is still a two-input AND (function untouched).
        match opt.node(new_g).kind {
            NodeKind::Gate2 { f, a, b: bb } => {
                assert_eq!(f, Bf2::AND);
                // Fanin a is an explicit inverter of the input, not an
                // absorbed negation.
                assert!(matches!(
                    opt.node(a).kind,
                    NodeKind::Gate1 { f: Bf1::Inv, .. }
                ));
                assert!(matches!(opt.node(bb).kind, NodeKind::Input));
            }
            ref k => panic!("protected node rewritten to {k:?}"),
        }
        for va in [false, true] {
            for vb in [false, true] {
                assert_eq!(opt.evaluate(&[va, vb]), nl.evaluate(&[va, vb]));
            }
        }
    }

    #[test]
    fn protected_constant_fanin_is_materialized() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let one = b.constant(true);
        let pass = b.gate2("pass", Bf2::AND, x, one); // folds to x unprotected
        let g = b.gate2("g", Bf2::XOR, pass, one); // protected
        b.output(g);
        let nl = b.finish().unwrap();
        let (opt, _, map) = optimize_protected(&nl, &[g]);
        let new_g = map[g.index()].unwrap();
        match opt.node(new_g).kind {
            NodeKind::Gate2 { f, a, b: bb } => {
                assert_eq!(f, Bf2::XOR, "visible function untouched");
                assert!(matches!(opt.node(a).kind, NodeKind::Input));
                assert!(matches!(opt.node(bb).kind, NodeKind::Const(true)));
            }
            ref k => panic!("protected node rewritten to {k:?}"),
        }
        assert_eq!(opt.evaluate(&[false]), nl.evaluate(&[false]));
        assert_eq!(opt.evaluate(&[true]), nl.evaluate(&[true]));
    }

    #[test]
    fn protection_preserves_equivalence_under_every_substitution() {
        // The point of protection: swapping the protected gate's function
        // (as key resolution does for a camouflaged cell) must produce
        // equivalent netlists on both sides. Exercise every Bf2 at a
        // random protected gate of random netlists.
        for seed in 0..10 {
            let nl = NetlistGenerator::new(GeneratorConfig::new("t", 8, 4, 80).with_seed(seed))
                .unwrap()
                .generate();
            let victim = nl
                .nodes()
                .enumerate()
                .filter(|(_, n)| matches!(n.kind, NodeKind::Gate2 { .. }))
                .map(|(i, _)| NodeId(i as u32))
                .nth(seed as usize % 5)
                .expect("generated netlist has gates");
            let (opt, _, map) = optimize_protected(&nl, &[victim]);
            opt.check().unwrap();
            assert_eq!(opt.inputs().len(), 8);
            assert_eq!(opt.outputs().len(), 4);
            let new_victim = map[victim.index()].unwrap();
            for f in Bf2::ALL {
                let orig = substitute(&nl, victim, f);
                let swapped = substitute(&opt, new_victim, f);
                let mut rng = StdRng::seed_from_u64(seed * 31 + f.truth_table() as u64);
                assert_eq!(
                    random_equivalence_check(&orig, &swapped, 4, &mut rng).unwrap(),
                    None,
                    "seed {seed} f {f}"
                );
            }
        }
    }

    /// Rebuilds `nl` with the two-input gate at `at` replaced by `f`.
    fn substitute(nl: &Netlist, at: NodeId, f: Bf2) -> Netlist {
        let mut b = NetlistBuilder::new(nl.name().to_string());
        let mut ids: Vec<NodeId> = Vec::with_capacity(nl.len());
        for (i, node) in nl.nodes().enumerate() {
            let id = match node.kind {
                NodeKind::Input => b.input(node.name),
                NodeKind::Const(c) => b.constant(c),
                NodeKind::Gate1 { f, a } => b.gate1(node.name, f, ids[a.index()]),
                NodeKind::Gate2 { f: g, a, b: bb } => {
                    let g = if NodeId(i as u32) == at { f } else { g };
                    b.gate2(node.name, g, ids[a.index()], ids[bb.index()])
                }
            };
            ids.push(id);
        }
        for &o in nl.outputs() {
            b.output(ids[o.index()]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn constant_output_is_rematerialized() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let nx = b.gate1("nx", Bf1::Inv, x);
        let g = b.gate2("g", Bf2::AND, x, nx); // always 0
        b.output(g);
        let nl = b.finish().unwrap();
        let (opt, _) = optimize(&nl);
        assert_eq!(opt.evaluate(&[false]), vec![false]);
        assert_eq!(opt.evaluate(&[true]), vec![false]);
        assert_eq!(opt.gate_count(), 0);
    }
}
