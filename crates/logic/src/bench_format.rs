//! ISCAS `.bench` format parser and writer.
//!
//! The parser accepts the classic ISCAS-85/89 dialect:
//!
//! ```text
//! # c17
//! INPUT(1)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! n-ary `AND/OR/XOR` (and their complements) are decomposed into balanced
//! trees of two-input gates; `DFF`s are cut exactly as the paper's Sec. V-A
//! prescribes for SAT attacks: *"the inputs (and outputs) of all flip-flops
//! become primary outputs (and inputs); thereafter, the flip-flops are
//! removed"* — mimicking scan-chain access.

use crate::bf2::{Bf1, Bf2};
use crate::builder::NetlistBuilder;
use crate::error::LogicError;
use crate::netlist::{Netlist, NodeId, NodeKind};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct RawGate {
    lhs: String,
    op: String,
    args: Vec<String>,
    line: usize,
}

fn parse_line(line: &str) -> Option<(&str, &str)> {
    // Splits "LHS = OP(args)" or returns None for non-assignments.
    let eq = line.find('=')?;
    Some((line[..eq].trim(), line[eq + 1..].trim()))
}

fn parse_call(expr: &str, line: usize) -> Result<(String, Vec<String>), LogicError> {
    let open = expr.find('(').ok_or_else(|| LogicError::Parse {
        line,
        message: format!("expected OP(...) but found `{expr}`"),
    })?;
    let close = expr.rfind(')').ok_or_else(|| LogicError::Parse {
        line,
        message: "missing closing parenthesis".into(),
    })?;
    let op = expr[..open].trim().to_ascii_uppercase();
    let args: Vec<String> = expr[open + 1..close]
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if args.is_empty() {
        return Err(LogicError::Parse {
            line,
            message: format!("`{op}` has no operands"),
        });
    }
    Ok((op, args))
}

/// Interface bookkeeping for a parsed `.bench` design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedBench {
    /// The (scan-preprocessed) combinational netlist. Pseudo primary
    /// inputs/outputs from DFF cutting come *after* the real ones, in DFF
    /// declaration order.
    pub netlist: Netlist,
    /// Number of genuine primary inputs (before the pseudo inputs).
    pub real_inputs: usize,
    /// Number of genuine primary outputs (before the pseudo outputs).
    pub real_outputs: usize,
    /// Number of flip-flops that were cut.
    pub dff_count: usize,
}

/// Parses a `.bench` netlist. Sequential designs are scan-preprocessed
/// (DFF boundaries become pseudo-PI/PO).
///
/// # Errors
///
/// See [`parse_bench_detailed`].
pub fn parse_bench(text: &str) -> Result<Netlist, LogicError> {
    parse_bench_detailed(text).map(|p| p.netlist)
}

/// Parses a `.bench` netlist, additionally reporting the real/pseudo
/// interface split (needed to rebuild sequential semantics, see
/// [`crate::seq`]).
///
/// # Errors
///
/// Returns [`LogicError::Parse`] for malformed lines,
/// [`LogicError::UnknownSignal`] / [`LogicError::DuplicateSignal`] for
/// wiring bugs, and [`LogicError::CombinationalLoop`] if the combinational
/// core is cyclic.
pub fn parse_bench_detailed(text: &str) -> Result<ParsedBench, LogicError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut gates: Vec<RawGate> = Vec::new();
    let mut name = "bench".to_string();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let c = comment.trim();
            if name == "bench" && !c.is_empty() {
                name = c.split_whitespace().next().unwrap_or("bench").to_string();
            }
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("INPUT") {
            let (_, args) = parse_call(line, line_no)?;
            inputs.extend(args);
        } else if upper.starts_with("OUTPUT") {
            let (_, args) = parse_call(line, line_no)?;
            outputs.extend(args);
        } else if let Some((lhs, rhs)) = parse_line(line) {
            let (op, args) = parse_call(rhs, line_no)?;
            gates.push(RawGate {
                lhs: lhs.to_string(),
                op,
                args,
                line: line_no,
            });
        } else {
            return Err(LogicError::Parse {
                line: line_no,
                message: format!("unrecognized statement `{line}`"),
            });
        }
    }

    // Scan preprocessing: cut DFFs.
    let mut pseudo_inputs: Vec<String> = Vec::new();
    let mut pseudo_outputs: Vec<String> = Vec::new();
    let mut comb_gates: Vec<RawGate> = Vec::new();
    for g in gates {
        if g.op == "DFF" {
            if g.args.len() != 1 {
                return Err(LogicError::Parse {
                    line: g.line,
                    message: "DFF takes exactly one operand".into(),
                });
            }
            pseudo_inputs.push(g.lhs.clone());
            pseudo_outputs.push(g.args[0].clone());
        } else {
            comb_gates.push(g);
        }
    }

    // Definition table and duplicate detection.
    let mut defined: HashMap<&str, usize> = HashMap::new();
    for (i, g) in comb_gates.iter().enumerate() {
        if defined.insert(g.lhs.as_str(), i).is_some() {
            return Err(LogicError::DuplicateSignal(g.lhs.clone()));
        }
    }
    for pin in inputs.iter().chain(&pseudo_inputs) {
        if defined.contains_key(pin.as_str()) {
            return Err(LogicError::DuplicateSignal(pin.clone()));
        }
    }

    // Kahn topological sort of the gate set.
    let mut b = NetlistBuilder::new(name);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    for pin in inputs.iter().chain(&pseudo_inputs) {
        if ids.contains_key(pin) {
            return Err(LogicError::DuplicateSignal(pin.clone()));
        }
        ids.insert(pin.clone(), b.input(pin.clone()));
    }

    let mut indegree: Vec<usize> = vec![0; comb_gates.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); comb_gates.len()];
    for (i, g) in comb_gates.iter().enumerate() {
        for arg in &g.args {
            if let Some(&j) = defined.get(arg.as_str()) {
                indegree[i] += 1;
                dependents[j].push(i);
            } else if !ids.contains_key(arg) {
                return Err(LogicError::UnknownSignal(arg.clone()));
            }
        }
    }
    let mut queue: Vec<usize> = (0..comb_gates.len())
        .filter(|&i| indegree[i] == 0)
        .collect();
    let mut emitted = 0usize;
    while let Some(i) = queue.pop() {
        emitted += 1;
        let g = &comb_gates[i];
        let arg_ids: Vec<NodeId> = g.args.iter().map(|a| ids[a.as_str()]).collect();
        let id = emit_gate(&mut b, g, &arg_ids)?;
        ids.insert(g.lhs.clone(), id);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push(d);
            }
        }
    }
    if emitted != comb_gates.len() {
        let stuck = (0..comb_gates.len())
            .find(|&i| indegree[i] > 0)
            .map(|i| comb_gates[i].lhs.clone())
            .unwrap_or_default();
        return Err(LogicError::CombinationalLoop(stuck));
    }

    for out in outputs.iter().chain(&pseudo_outputs) {
        let id = *ids
            .get(out.as_str())
            .ok_or_else(|| LogicError::UnknownSignal(out.clone()))?;
        b.output(id);
    }
    Ok(ParsedBench {
        netlist: b.finish()?,
        real_inputs: inputs.len(),
        real_outputs: outputs.len(),
        dff_count: pseudo_inputs.len(),
    })
}

fn emit_gate(b: &mut NetlistBuilder, g: &RawGate, args: &[NodeId]) -> Result<NodeId, LogicError> {
    let unary_arity = |n: usize| -> Result<(), LogicError> {
        if n == 1 {
            Ok(())
        } else {
            Err(LogicError::Parse {
                line: g.line,
                message: format!("`{}` takes one operand, got {n}", g.op),
            })
        }
    };
    let id = match g.op.as_str() {
        "NOT" | "INV" => {
            unary_arity(args.len())?;
            b.gate1(g.lhs.clone(), Bf1::Inv, args[0])
        }
        "BUF" | "BUFF" => {
            unary_arity(args.len())?;
            b.gate1(g.lhs.clone(), Bf1::Buf, args[0])
        }
        "AND" | "OR" | "XOR" | "NAND" | "NOR" | "XNOR" => {
            let (base, invert) = match g.op.as_str() {
                "AND" => (Bf2::AND, false),
                "OR" => (Bf2::OR, false),
                "XOR" => (Bf2::XOR, false),
                "NAND" => (Bf2::AND, true),
                "NOR" => (Bf2::OR, true),
                _ => (Bf2::XOR, true),
            };
            if args.len() == 1 {
                // Degenerate single-operand gate: identity or inverter.
                let f = if invert { Bf1::Inv } else { Bf1::Buf };
                b.gate1(g.lhs.clone(), f, args[0])
            } else if args.len() == 2 {
                let f = if invert { base.complement() } else { base };
                b.gate2(g.lhs.clone(), f, args[0], args[1])
            } else {
                // Reduce all but the last operand, then emit the named root
                // gate (complemented if needed) so `lhs` is a real signal.
                let acc = b.reduce_tree(base, &args[..args.len() - 1]);
                let f = if invert { base.complement() } else { base };
                b.gate2(g.lhs.clone(), f, acc, args[args.len() - 1])
            }
        }
        other => {
            return Err(LogicError::Parse {
                line: g.line,
                message: format!("unknown operator `{other}`"),
            })
        }
    };
    Ok(id)
}

/// Serializes a netlist to `.bench` text.
///
/// Functions outside the classic operator set (e.g. `A_AND_NOT_B`) are
/// emitted with an auxiliary `NOT` line, so the output is always valid
/// ISCAS `.bench` and functionally identical (round-trips may therefore add
/// inverter nodes).
pub fn write_bench(nl: &Netlist) -> String {
    let mut s = String::new();
    s.push_str(&format!("# {}\n", nl.name()));
    for &i in nl.inputs() {
        s.push_str(&format!("INPUT({})\n", nl.node(i).name));
    }
    for &o in nl.outputs() {
        s.push_str(&format!("OUTPUT({})\n", nl.node(o).name));
    }
    for node in nl.nodes() {
        let lhs = &node.name;
        match node.kind {
            NodeKind::Input => {}
            NodeKind::Const(c) => {
                // .bench has no constants: synthesize one from any input
                // (x AND NOT x / x OR NOT x); fall back to a comment for
                // netlists with no inputs at all.
                if let Some(&first) = nl.inputs().first() {
                    let x = &nl.node(first).name;
                    let op = if c { "OR" } else { "AND" };
                    s.push_str(&format!("{lhs}_bar = NOT({x})\n"));
                    s.push_str(&format!("{lhs} = {op}({x}, {lhs}_bar)\n"));
                } else {
                    s.push_str(&format!("# {lhs} = CONST{}\n", c as u8));
                }
            }
            NodeKind::Gate1 { f, a } => {
                let an = &nl.node(a).name;
                match f {
                    Bf1::Buf => s.push_str(&format!("{lhs} = BUFF({an})\n")),
                    Bf1::Inv => s.push_str(&format!("{lhs} = NOT({an})\n")),
                    Bf1::Const0 => {
                        s.push_str(&format!("{lhs}_bar = NOT({an})\n"));
                        s.push_str(&format!("{lhs} = AND({an}, {lhs}_bar)\n"));
                    }
                    Bf1::Const1 => {
                        s.push_str(&format!("{lhs}_bar = NOT({an})\n"));
                        s.push_str(&format!("{lhs} = OR({an}, {lhs}_bar)\n"));
                    }
                }
            }
            NodeKind::Gate2 { f, a, b } => {
                let an = nl.node(a).name;
                let bn = nl.node(b).name;
                let direct = match f {
                    Bf2::AND => Some("AND"),
                    Bf2::OR => Some("OR"),
                    Bf2::XOR => Some("XOR"),
                    Bf2::NAND => Some("NAND"),
                    Bf2::NOR => Some("NOR"),
                    Bf2::XNOR => Some("XNOR"),
                    _ => None,
                };
                if let Some(op) = direct {
                    s.push_str(&format!("{lhs} = {op}({an}, {bn})\n"));
                    continue;
                }
                match f {
                    Bf2::BUF_A => s.push_str(&format!("{lhs} = BUFF({an})\n")),
                    Bf2::BUF_B => s.push_str(&format!("{lhs} = BUFF({bn})\n")),
                    Bf2::NOT_A => s.push_str(&format!("{lhs} = NOT({an})\n")),
                    Bf2::NOT_B => s.push_str(&format!("{lhs} = NOT({bn})\n")),
                    Bf2::FALSE => {
                        s.push_str(&format!("{lhs}_bar = NOT({an})\n"));
                        s.push_str(&format!("{lhs} = AND({an}, {lhs}_bar)\n"));
                    }
                    Bf2::TRUE => {
                        s.push_str(&format!("{lhs}_bar = NOT({an})\n"));
                        s.push_str(&format!("{lhs} = OR({an}, {lhs}_bar)\n"));
                    }
                    Bf2::A_AND_NOT_B => {
                        s.push_str(&format!("{lhs}_bar = NOT({bn})\n"));
                        s.push_str(&format!("{lhs} = AND({an}, {lhs}_bar)\n"));
                    }
                    Bf2::NOT_A_AND_B => {
                        s.push_str(&format!("{lhs}_bar = NOT({an})\n"));
                        s.push_str(&format!("{lhs} = AND({lhs}_bar, {bn})\n"));
                    }
                    Bf2::A_OR_NOT_B => {
                        s.push_str(&format!("{lhs}_bar = NOT({bn})\n"));
                        s.push_str(&format!("{lhs} = OR({an}, {lhs}_bar)\n"));
                    }
                    Bf2::NOT_A_OR_B => {
                        s.push_str(&format!("{lhs}_bar = NOT({an})\n"));
                        s.push_str(&format!("{lhs} = OR({lhs}_bar, {bn})\n"));
                    }
                    _ => unreachable!("direct ops handled above"),
                }
            }
        }
    }
    s
}

/// The genuine ISCAS-85 c17 benchmark (6 NAND gates), embedded for parity
/// tests against the published literature.
pub const C17_BENCH: &str = "\
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn c17_parses_with_correct_shape() {
        let nl = parse_bench(C17_BENCH).unwrap();
        assert_eq!(nl.name(), "c17");
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 6);
    }

    #[test]
    fn c17_functional_spot_checks() {
        let nl = parse_bench(C17_BENCH).unwrap();
        // Known c17 vector: all-zero inputs → 22 = NAND(1,1) = ... compute
        // by hand: 10 = 1, 11 = 1, 16 = 1, 19 = 1, 22 = NAND(1,1) = 0,
        // 23 = NAND(1,1) = 0.
        assert_eq!(nl.evaluate(&[false; 5]), vec![false, false]);
        // All-ones: 10 = 0, 11 = 0, 16 = 1, 19 = 1, 22 = NAND(0,1) = 1,
        // 23 = NAND(1,1) = 0.
        assert_eq!(nl.evaluate(&[true; 5]), vec![true, false]);
    }

    #[test]
    fn out_of_order_definitions_are_sorted() {
        let text = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(t, b)
t = OR(a, b)
";
        let nl = parse_bench(text).unwrap();
        assert_eq!(nl.evaluate(&[true, false]), vec![false]);
        assert_eq!(nl.evaluate(&[false, true]), vec![true]);
    }

    #[test]
    fn nary_gates_decompose_correctly() {
        let text = "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
y = NAND(a, b, c, d)
z = XNOR(a, b, c)
";
        let nl = parse_bench(text).unwrap();
        for p in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| (p >> i) & 1 == 1).collect();
            let out = nl.evaluate(&v);
            assert_eq!(out[0], !(v[0] && v[1] && v[2] && v[3]), "NAND p={p}");
            assert_eq!(out[1], !(v[0] ^ v[1] ^ v[2]), "XNOR p={p}");
        }
    }

    #[test]
    fn dff_is_cut_into_pseudo_pi_po() {
        let text = "\
# tiny_seq
INPUT(x)
OUTPUT(y)
q = DFF(d)
d = XOR(x, q)
y = AND(q, x)
";
        let nl = parse_bench(text).unwrap();
        // x plus pseudo-input q; y plus pseudo-output d.
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 2);
        // With q = 1, x = 1: y = 1 and d = 0.
        let map = nl.name_map();
        let xi = nl
            .inputs()
            .iter()
            .position(|i| nl.node(*i).name == "x")
            .unwrap();
        let mut vals = vec![false, false];
        vals[xi] = true;
        let qi = 1 - xi;
        vals[qi] = true;
        let out = nl.evaluate(&vals);
        assert!(map.contains_key("q"));
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn unknown_signal_is_reported() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        assert!(matches!(parse_bench(text), Err(LogicError::UnknownSignal(s)) if s == "ghost"));
    }

    #[test]
    fn combinational_loop_is_detected() {
        let text = "\
INPUT(a)
OUTPUT(y)
p = AND(a, q)
q = OR(p, a)
y = BUFF(p)
";
        assert!(matches!(
            parse_bench(text),
            Err(LogicError::CombinationalLoop(_))
        ));
    }

    #[test]
    fn duplicate_definition_is_rejected() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n";
        assert!(matches!(
            parse_bench(text),
            Err(LogicError::DuplicateSignal(_))
        ));
    }

    #[test]
    fn malformed_line_is_rejected_with_line_number() {
        let text = "INPUT(a)\nthis is not bench\n";
        match parse_bench(text) {
            Err(LogicError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_function() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let text = write_bench(&nl);
        let back = parse_bench(&text).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            crate::sim::random_equivalence_check(&nl, &back, 4, &mut rng).unwrap(),
            None
        );
    }

    #[test]
    fn round_trip_handles_exotic_functions() {
        use crate::bf2::Bf2;
        use crate::builder::NetlistBuilder;
        let mut b = NetlistBuilder::new("exotic");
        let x = b.input("x");
        let y = b.input("y");
        let mut outs = Vec::new();
        for (i, f) in Bf2::ALL.iter().enumerate() {
            let g = b.gate2(format!("f{i}"), *f, x, y);
            outs.push(g);
        }
        for o in outs {
            b.output(o);
        }
        let nl = b.finish().unwrap();
        let back = parse_bench(&write_bench(&nl)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            crate::sim::random_equivalence_check(&nl, &back, 4, &mut rng).unwrap(),
            None
        );
    }
}
