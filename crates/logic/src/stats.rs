//! Netlist characteristics (the Table III columns, plus structural health
//! metrics used by the generator tests).

use crate::netlist::{Netlist, NodeKind};
use std::fmt;

/// Summary statistics of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Design name.
    pub name: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Gate count (1- and 2-input gates).
    pub gates: usize,
    /// Logic depth (max level over outputs).
    pub depth: usize,
    /// Maximum fanout of any node.
    pub max_fanout: usize,
    /// Mean fanout over all nodes with fanout ≥ 1.
    pub avg_fanout: f64,
    /// Gates that drive nothing and are not outputs (dead logic).
    pub dead_gates: usize,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    pub fn compute(netlist: &Netlist) -> Self {
        let fanouts = netlist.fanout_csr();
        let mut max_fanout = 0usize;
        let mut fanout_sum = 0usize;
        let mut driven = 0usize;
        for i in 0..netlist.len() {
            let f = fanouts.fanouts(crate::netlist::NodeId(i as u32));
            max_fanout = max_fanout.max(f.len());
            if !f.is_empty() {
                fanout_sum += f.len();
                driven += 1;
            }
        }
        let is_output: Vec<bool> = {
            let mut v = vec![false; netlist.len()];
            for &o in netlist.outputs() {
                v[o.index()] = true;
            }
            v
        };
        let dead_gates = netlist
            .nodes()
            .enumerate()
            .filter(|(i, n)| {
                matches!(n.kind, NodeKind::Gate1 { .. } | NodeKind::Gate2 { .. })
                    && fanouts
                        .fanouts(crate::netlist::NodeId(*i as u32))
                        .is_empty()
                    && !is_output[*i]
            })
            .count();
        NetlistStats {
            name: netlist.name().to_string(),
            inputs: netlist.inputs().len(),
            outputs: netlist.outputs().len(),
            gates: netlist.gate_count(),
            depth: netlist.depth(),
            max_fanout,
            avg_fanout: if driven > 0 {
                fanout_sum as f64 / driven as f64
            } else {
                0.0
            },
            dead_gates,
        }
    }

    /// Formats the Table III row: `Benchmark | Inputs | Outputs | Gates`.
    pub fn table_iii_row(&self) -> String {
        format!(
            "{:<14} {:>7} {:>8} {:>10}",
            self.name, self.inputs, self.outputs, self.gates
        )
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: PI={} PO={} gates={} depth={} max_fanout={} avg_fanout={:.2} dead={}",
            self.name,
            self.inputs,
            self.outputs,
            self.gates,
            self.depth,
            self.max_fanout,
            self.avg_fanout,
            self.dead_gates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::{parse_bench, C17_BENCH};

    #[test]
    fn c17_stats() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let s = NetlistStats::compute(&nl);
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.gates, 6);
        assert_eq!(s.depth, 3);
        assert_eq!(s.dead_gates, 0);
        assert!(s.max_fanout >= 2); // node 11 and 16 fan out twice
    }

    #[test]
    fn table_row_contains_counts() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let row = NetlistStats::compute(&nl).table_iii_row();
        assert!(row.contains("c17") && row.contains('5') && row.contains('6'));
    }

    #[test]
    fn display_is_informative() {
        let nl = parse_bench(C17_BENCH).unwrap();
        let s = NetlistStats::compute(&nl).to_string();
        assert!(s.contains("depth=3"));
    }
}
