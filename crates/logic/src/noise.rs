//! Noise-aware bit-parallel evaluation: the engine behind every stochastic
//! oracle.
//!
//! The paper's headline defense (Sec. V-B) is stochastic switching whose
//! "error rate for any switch can be tuned individually". This module makes
//! that tunability a first-class, *fast* object:
//!
//! * [`ErrorProfile`] — a dense per-node flip-rate table (`Vec<f64>`, one
//!   entry per netlist node). Uniform rates, per-node vectors, and
//!   device-derived per-switch rates (see `gshe_core::stochastic`) all
//!   normalize to this one representation, so interpreters never do a
//!   per-node set-membership probe.
//! * [`FaultSimulator`] — a bit-parallel simulator that evaluates 64 input
//!   patterns per pass (like [`Simulator`]) and injects faults as per-node
//!   64-bit Bernoulli flip masks. A mask costs at most 32 RNG words
//!   (usually fewer), so noise costs O(noisy nodes) per *block* instead of
//!   one RNG call per node per pattern.
//!
//! With an all-zero profile the engine is bit-identical to [`Simulator`]
//! (property-tested in `tests/fault_sim_props.rs`), so deterministic and
//! stochastic evaluation share one gate-eval core:
//! [`NodeKind::eval_lanes`].

use crate::error::LogicError;
use crate::netlist::{Netlist, NodeId};
use crate::sim::{PatternBlock, NODES_EVALUATED};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::borrow::Cow;

/// Fractional bits of precision in [`bernoulli_mask`]'s fixed-point
/// representation of the flip probability.
const BERNOULLI_BITS: u32 = 32;

/// Draws a 64-bit mask whose bits are independently 1 with probability `p`
/// (quantized to 32 fractional bits).
///
/// The mask is built by Horner-evaluating the binary expansion of `p` over
/// uniform random words: processing digit `b` maps the running mask `m` to
/// `r | m` (digit 1) or `r & m` (digit 0), which halves-and-shifts the
/// per-bit probability exactly. Trailing zero digits are no-ops and are
/// skipped, so dyadic rates (0.5, 0.25, …) cost only a few words and any
/// rate costs at most 32 — versus 64 `gen_bool` calls for a
/// pattern-at-a-time interpreter.
///
/// # Panics
///
/// Panics (debug) if `p` is outside `[0, 1]`.
pub fn bernoulli_mask<R: RngCore + ?Sized>(rng: &mut R, p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p), "flip probability out of range");
    let q = (p * (1u64 << BERNOULLI_BITS) as f64).round() as u64;
    if q == 0 {
        return 0;
    }
    if q >= 1u64 << BERNOULLI_BITS {
        return !0;
    }
    let mut mask = 0u64;
    for i in q.trailing_zeros()..BERNOULLI_BITS {
        let r = rng.next_u64();
        mask = if (q >> i) & 1 == 1 {
            r | mask
        } else {
            r & mask
        };
    }
    mask
}

/// A dense per-node error-rate table: entry `i` is the probability that
/// node `i`'s computed value flips per evaluation.
///
/// This is the normal form every noise description reduces to — a uniform
/// rate over a node subset, an explicit rate vector, or per-switch rates
/// derived from spin current and clock period (Sec. V-B's knob). Dense
/// storage keeps the hot simulation loop to an indexed load, with the
/// noisy-node subset precomputed at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorProfile {
    rates: Vec<f64>,
    /// Indices with a nonzero rate, ascending (precomputed).
    noisy: Vec<u32>,
}

impl ErrorProfile {
    /// A profile of `len` nodes, all perfectly deterministic.
    pub fn zero(len: usize) -> Self {
        ErrorProfile {
            rates: vec![0.0; len],
            noisy: Vec::new(),
        }
    }

    /// A profile with every node flipping at `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn uniform(len: usize, rate: f64) -> Self {
        Self::from_rates(vec![rate; len])
    }

    /// A profile with `rate` at exactly the listed `nodes` and 0 elsewhere
    /// — the uniform-over-cloaked-cells shape of the original
    /// `StochasticOracle`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or a node index is out of
    /// range.
    pub fn uniform_at(len: usize, nodes: &[NodeId], rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "error rate must be in [0, 1]");
        let mut rates = vec![0.0; len];
        for node in nodes {
            rates[node.index()] = rate;
        }
        Self::from_rates(rates)
    }

    /// A profile from an explicit per-node rate vector.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` (NaN included).
    pub fn from_rates(rates: Vec<f64>) -> Self {
        assert!(
            rates.iter().all(|r| (0.0..=1.0).contains(r)),
            "error rate must be in [0, 1]"
        );
        let noisy = rates
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0.0)
            .map(|(i, _)| i as u32)
            .collect();
        ErrorProfile { rates, noisy }
    }

    /// Sets one node's rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or `node` is out of range.
    pub fn set(&mut self, node: NodeId, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "error rate must be in [0, 1]");
        self.rates[node.index()] = rate;
        // Rebuild the noisy set; `set` is a construction-time operation.
        self.noisy = self
            .rates
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0.0)
            .map(|(i, _)| i as u32)
            .collect();
    }

    /// The flip rate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn rate(&self, node: NodeId) -> f64 {
        self.rates[node.index()]
    }

    /// The dense rate table (one entry per node).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of nodes the profile covers.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` if the profile covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Ids of nodes with a nonzero rate, ascending.
    pub fn noisy_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.noisy.iter().map(|&i| NodeId(i))
    }

    /// Number of nodes with a nonzero rate.
    pub fn noisy_count(&self) -> usize {
        self.noisy.len()
    }

    /// `true` if every rate is zero (the engine is then bit-identical to
    /// [`Simulator`]).
    pub fn is_quiet(&self) -> bool {
        self.noisy.is_empty()
    }

    /// The largest per-node rate (0 for a quiet profile).
    pub fn max_rate(&self) -> f64 {
        self.noisy
            .iter()
            .map(|&i| self.rates[i as usize])
            .fold(0.0, f64::max)
    }

    /// A stable identity hash of the profile (folds every rate's bit
    /// pattern). Campaigns mix this into job seeds so distinct profiles
    /// draw distinct noise streams, and report rows can name the profile
    /// they measured.
    pub fn fingerprint(&self) -> u64 {
        let mut h = splitmix(self.rates.len() as u64 ^ 0x9027_1A5E);
        for &r in &self.rates {
            h = splitmix(h ^ r.to_bits());
        }
        h
    }
}

/// SplitMix64 finalizer (local copy; `gshe-campaign` has the canonical
/// seed-derivation one, but `gshe-logic` sits below it in the crate DAG).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Bit-parallel, noise-aware netlist simulator: evaluates 64 patterns per
/// pass and flips each node's 64 computed values according to its
/// [`ErrorProfile`] rate.
///
/// Faults at internal nodes propagate forward through the sweep and
/// superpose — exactly the stochastically correlated output behaviour
/// Sec. V-B relies on to break SAT-style attacks.
///
/// Two evaluation paths share one gate core ([`NodeKind::eval_lanes`]) but
/// consume the RNG differently:
///
/// * [`FaultSimulator::run`] (block path) draws one Bernoulli *mask* per
///   noisy node per block;
/// * [`FaultSimulator::run_scalar`] (scalar path) draws one `gen_bool` per
///   noisy node per pattern — the historical `StochasticOracle::query`
///   stream, kept so seeded scalar experiments reproduce across the
///   refactor.
///
/// Both are deterministic per (netlist, profile, seed).
///
/// The netlist is held as a [`Cow`], so the engine normally borrows (the
/// static-oracle case) but an upper layer may swap in an owned netlist of
/// the same shape per key-rotation epoch ([`FaultSimulator::install`]) —
/// the rates, RNG stream, and scratch all survive the swap.
#[derive(Debug, Clone)]
pub struct FaultSimulator<'a> {
    netlist: Cow<'a, Netlist>,
    profile: ErrorProfile,
    /// Scratch buffer reused across calls.
    values: Vec<u64>,
    /// Pre-drawn flip masks for the scalar-stream path (one slot per noisy
    /// node), reused across calls so a stream segment allocates nothing.
    flips: Vec<u64>,
    rng: StdRng,
}

impl<'a> FaultSimulator<'a> {
    /// Creates an engine for `netlist` with the given `profile` and noise
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover exactly the netlist's nodes.
    pub fn new(netlist: &'a Netlist, profile: ErrorProfile, seed: u64) -> Self {
        Self::over(Cow::Borrowed(netlist), profile, seed)
    }

    /// Creates an engine over an *owned* netlist (e.g. one resolved per
    /// rotation epoch) with the given `profile` and noise seed.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover exactly the netlist's nodes.
    pub fn owned(netlist: Netlist, profile: ErrorProfile, seed: u64) -> FaultSimulator<'static> {
        FaultSimulator::over(Cow::Owned(netlist), profile, seed)
    }

    fn over(netlist: Cow<'a, Netlist>, profile: ErrorProfile, seed: u64) -> Self {
        assert_eq!(
            profile.len(),
            netlist.len(),
            "error profile must cover every netlist node"
        );
        FaultSimulator {
            values: vec![0; netlist.len()],
            flips: vec![0; profile.noisy.len()],
            netlist,
            profile,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Swaps the evaluated netlist for `netlist` (same node count — the
    /// profile must keep covering every node), preserving the noise RNG
    /// stream and scratch. This is the key-rotation hook: a rotating layer
    /// re-resolves the keyed netlist per epoch and installs it here, so the
    /// noise state spans epochs exactly like a scalar query stream would.
    ///
    /// # Panics
    ///
    /// Panics if `netlist` has a different node count than the profile.
    pub fn install(&mut self, netlist: Netlist) {
        assert_eq!(
            self.profile.len(),
            netlist.len(),
            "installed netlist must match the error profile"
        );
        self.netlist = Cow::Owned(netlist);
    }

    /// The installed error profile.
    pub fn profile(&self) -> &ErrorProfile {
        &self.profile
    }

    /// Simulates a block of patterns with fault injection; returns one
    /// `u64` per primary output (bit `k` = output value under pattern
    /// `k`).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] if the block width does
    /// not match the number of primary inputs.
    pub fn run(&mut self, block: &PatternBlock) -> Result<Vec<u64>, LogicError> {
        let nl: &Netlist = &self.netlist;
        if block.lanes.len() != nl.inputs().len() {
            return Err(LogicError::InputCountMismatch {
                expected: nl.inputs().len(),
                got: block.lanes.len(),
            });
        }
        let values = &mut self.values;
        let rates = self.profile.rates();
        for i in 0..nl.len() {
            let mut v = nl.eval_node_lanes(i, values, |k| block.lanes[k]);
            let rate = rates[i];
            if rate > 0.0 {
                v ^= bernoulli_mask(&mut self.rng, rate);
            }
            values[i] = v;
        }
        gshe_obs::count(NODES_EVALUATED, nl.len() as u64);
        Ok(nl.outputs().iter().map(|o| values[o.index()]).collect())
    }

    /// Like [`FaultSimulator::run`], but clears the bits of invalid lanes
    /// (`k >= block.count`) so block-capable oracles can return the lanes
    /// directly.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] on arity mismatch.
    pub fn run_masked(&mut self, block: &PatternBlock) -> Result<Vec<u64>, LogicError> {
        let mut lanes = self.run(block)?;
        let mask = block.valid_mask();
        for lane in &mut lanes {
            *lane &= mask;
        }
        Ok(lanes)
    }

    /// Evaluates one pattern with fault injection, drawing exactly one
    /// `gen_bool` per noisy node (the historical scalar stream: flips at
    /// noisy nodes in topological order).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] on arity mismatch.
    pub fn run_scalar(&mut self, inputs: &[bool]) -> Result<Vec<bool>, LogicError> {
        let nl: &Netlist = &self.netlist;
        if inputs.len() != nl.inputs().len() {
            return Err(LogicError::InputCountMismatch {
                expected: nl.inputs().len(),
                got: inputs.len(),
            });
        }
        let values = &mut self.values;
        let rates = self.profile.rates();
        // Lane 0 carries the pattern; the gate core is bitwise, so the
        // remaining lanes are simply ignored.
        for i in 0..nl.len() {
            let mut v = nl.eval_node_lanes(i, values, |k| inputs[k] as u64);
            let rate = rates[i];
            if rate > 0.0 && self.rng.gen_bool(rate) {
                v ^= 1;
            }
            values[i] = v;
        }
        gshe_obs::count(NODES_EVALUATED, nl.len() as u64);
        Ok(nl
            .outputs()
            .iter()
            .map(|o| values[o.index()] & 1 == 1)
            .collect())
    }

    /// Evaluates a block segment (`start..start + len` of `block`'s
    /// patterns) bit-parallel while drawing the **scalar** noise stream:
    /// exactly one `gen_bool` per noisy node per pattern, pattern-major —
    /// the same RNG order [`FaultSimulator::run_scalar`] consumes. The
    /// flip decisions are pre-drawn into per-node masks (a flip is a
    /// Bernoulli draw independent of the computed value, so pre-drawing
    /// commutes with evaluation), then a single bit-parallel pass applies
    /// them — gate evaluation stays 64-wide while the segment's outputs,
    /// and the post-call RNG state, match `len` scalar calls bit for bit.
    ///
    /// Lanes outside the segment evaluate noise-free; callers mask to the
    /// segment. This is the path a key-rotating layer uses to batch
    /// per-epoch segments over a noisy chip without changing the chip's
    /// per-query reference semantics.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] on arity mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds `block.count`.
    pub fn run_scalar_stream(
        &mut self,
        block: &PatternBlock,
        start: usize,
        len: usize,
    ) -> Result<Vec<u64>, LogicError> {
        let mut out = Vec::with_capacity(self.netlist.outputs().len());
        self.run_scalar_stream_into(block, start, len, &mut out)?;
        Ok(out)
    }

    /// Like [`FaultSimulator::run_scalar_stream`], but writes the output
    /// lanes into a caller-owned buffer (cleared and refilled) — zero
    /// allocations per segment in the steady state.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputCountMismatch`] on arity mismatch
    /// (leaving `out` cleared).
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds `block.count`.
    pub fn run_scalar_stream_into(
        &mut self,
        block: &PatternBlock,
        start: usize,
        len: usize,
        out: &mut Vec<u64>,
    ) -> Result<(), LogicError> {
        out.clear();
        let nl: &Netlist = &self.netlist;
        if block.lanes.len() != nl.inputs().len() {
            return Err(LogicError::InputCountMismatch {
                expected: nl.inputs().len(),
                got: block.lanes.len(),
            });
        }
        assert!(start + len <= block.count, "segment exceeds block");
        // Pre-draw the flip masks in scalar order: pattern-major, noisy
        // nodes in topological (ascending-id) order within each pattern.
        // The mask buffer is hoisted onto the simulator so a stream
        // segment performs no allocation at all.
        let rates = self.profile.rates();
        let flips = &mut self.flips;
        flips.clear();
        flips.resize(self.profile.noisy.len(), 0);
        for k in start..start + len {
            for (slot, &i) in flips.iter_mut().zip(&self.profile.noisy) {
                if self.rng.gen_bool(rates[i as usize]) {
                    *slot |= 1 << k;
                }
            }
        }
        let values = &mut self.values;
        let mut next_noisy = 0usize;
        for i in 0..nl.len() {
            let mut v = nl.eval_node_lanes(i, values, |k| block.lanes[k]);
            if rates[i] > 0.0 {
                v ^= flips[next_noisy];
                next_noisy += 1;
            }
            values[i] = v;
        }
        gshe_obs::count(NODES_EVALUATED, nl.len() as u64);
        out.extend(nl.outputs().iter().map(|o| values[o.index()]));
        Ok(())
    }

    /// Values of *all* nodes from the most recent run (packed lanes; for
    /// scalar runs only bit 0 is meaningful).
    pub fn node_values(&self) -> &[u64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf2::Bf2;
    use crate::builder::NetlistBuilder;
    use crate::sim::Simulator;

    fn adder() -> Netlist {
        let mut b = NetlistBuilder::new("fa");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.gate2("s", Bf2::XOR, x, y);
        let c = b.gate2("c", Bf2::AND, x, y);
        b.output(s);
        b.output(c);
        b.finish().unwrap()
    }

    #[test]
    fn quiet_profile_matches_plain_simulator() {
        let nl = adder();
        let mut rng = StdRng::seed_from_u64(9);
        let mut plain = Simulator::new(&nl);
        let mut noisy = FaultSimulator::new(&nl, ErrorProfile::zero(nl.len()), 1);
        for _ in 0..8 {
            let block = PatternBlock::random(2, &mut rng);
            assert_eq!(plain.run(&block).unwrap(), noisy.run(&block).unwrap());
        }
    }

    #[test]
    fn scalar_and_block_agree_when_quiet() {
        let nl = adder();
        let mut sim = FaultSimulator::new(&nl, ErrorProfile::zero(nl.len()), 1);
        for p in 0..4u32 {
            let inputs: Vec<bool> = (0..2).map(|k| (p >> k) & 1 == 1).collect();
            assert_eq!(sim.run_scalar(&inputs).unwrap(), nl.evaluate(&inputs));
        }
    }

    #[test]
    fn certain_flip_inverts_the_output() {
        let nl = adder();
        let s = nl.find("s").unwrap();
        let profile = ErrorProfile::uniform_at(nl.len(), &[s], 1.0);
        let mut sim = FaultSimulator::new(&nl, profile, 3);
        let block = PatternBlock::from_patterns(&[vec![true, false]]);
        let lanes = sim.run_masked(&block).unwrap();
        // XOR(1,0) = 1, flipped with certainty → 0; AND untouched → 0.
        assert_eq!(lanes[0] & 1, 0);
        assert_eq!(lanes[1] & 1, 0);
        let scalar = sim.run_scalar(&[true, false]).unwrap();
        assert_eq!(scalar, vec![false, false]);
    }

    #[test]
    fn bernoulli_mask_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(bernoulli_mask(&mut rng, 0.0), 0);
        assert_eq!(bernoulli_mask(&mut rng, 1.0), !0);
    }

    #[test]
    fn bernoulli_mask_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        for &p in &[0.5, 0.25, 0.05, 0.9] {
            let blocks = 4_000;
            let ones: u64 = (0..blocks)
                .map(|_| bernoulli_mask(&mut rng, p).count_ones() as u64)
                .sum();
            let freq = ones as f64 / (blocks * 64) as f64;
            assert!((freq - p).abs() < 0.01, "p={p} observed {freq}");
        }
    }

    #[test]
    fn profile_construction_and_identity() {
        let nl = adder();
        let s = nl.find("s").unwrap();
        let quiet = ErrorProfile::zero(nl.len());
        assert!(quiet.is_quiet());
        assert_eq!(quiet.noisy_count(), 0);
        assert_eq!(quiet.max_rate(), 0.0);

        let mut p = ErrorProfile::uniform_at(nl.len(), &[s], 0.1);
        assert!(!p.is_quiet());
        assert_eq!(p.noisy_nodes().collect::<Vec<_>>(), vec![s]);
        assert_eq!(p.rate(s), 0.1);
        assert_eq!(p.max_rate(), 0.1);
        assert_ne!(p.fingerprint(), quiet.fingerprint());

        p.set(s, 0.0);
        assert!(p.is_quiet());
        assert_eq!(p.fingerprint(), quiet.fingerprint());
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn profile_rejects_out_of_range_rates() {
        let _ = ErrorProfile::from_rates(vec![0.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "cover every netlist node")]
    fn engine_rejects_mismatched_profile() {
        let nl = adder();
        let _ = FaultSimulator::new(&nl, ErrorProfile::zero(nl.len() + 1), 0);
    }

    #[test]
    fn scalar_stream_block_matches_scalar_calls_bit_for_bit() {
        // The scalar-stream block path must reproduce run_scalar exactly —
        // outputs AND post-call RNG state — over arbitrary segment splits.
        let nl = adder();
        let s = nl.find("s").unwrap();
        let c = nl.find("c").unwrap();
        let profile = ErrorProfile::uniform_at(nl.len(), &[s, c], 0.3);
        let mut rng = StdRng::seed_from_u64(11);
        let mut fast = FaultSimulator::new(&nl, profile.clone(), 7);
        let mut slow = FaultSimulator::new(&nl, profile, 7);
        for (start, len) in [(0usize, 64usize), (0, 17), (17, 30), (47, 17)] {
            let block = PatternBlock::random(2, &mut rng);
            let lanes = fast.run_scalar_stream(&block, start, len).unwrap();
            for k in start..start + len {
                let y = slow.run_scalar(&block.pattern(k)).unwrap();
                for (o, &bit) in y.iter().enumerate() {
                    assert_eq!(
                        bit,
                        (lanes[o] >> k) & 1 == 1,
                        "segment ({start},{len}) pattern {k} output {o}"
                    );
                }
            }
        }
        // Twins must still agree afterwards: the streams stayed in sync.
        let probe = [true, true];
        assert_eq!(
            fast.run_scalar(&probe).unwrap(),
            slow.run_scalar(&probe).unwrap()
        );
    }

    #[test]
    fn install_swaps_the_netlist_and_keeps_the_noise_stream() {
        let nl = adder();
        let s = nl.find("s").unwrap();
        let profile = ErrorProfile::uniform_at(nl.len(), &[s], 0.5);
        let mut a = FaultSimulator::new(&nl, profile.clone(), 3);
        let mut b = FaultSimulator::new(&nl, profile, 3);
        let _ = a.run_scalar(&[true, false]).unwrap();
        let _ = b.run_scalar(&[true, false]).unwrap();
        // Install a structurally different netlist of the same size into
        // `a`: its answers change, but the RNG stream stays the twin's.
        let mut swapped = adder();
        let s2 = swapped.find("s").unwrap();
        swapped.set_gate2_function(s2, Bf2::XNOR).unwrap();
        a.install(swapped.clone());
        for p in 0..4u32 {
            let inputs: Vec<bool> = (0..2).map(|k| (p >> k) & 1 == 1).collect();
            let ya = a.run_scalar(&inputs).unwrap();
            let yb = b.run_scalar(&inputs).unwrap();
            // Same flip draws, different function: outputs differ exactly
            // where the swapped gate's clean value differs.
            assert_eq!(ya[0], !yb[0], "XNOR vs XOR under identical flips");
            assert_eq!(ya[1], yb[1], "carry gate untouched");
        }
    }

    #[test]
    #[should_panic(expected = "match the error profile")]
    fn install_rejects_mismatched_size() {
        let nl = adder();
        let mut sim = FaultSimulator::new(&nl, ErrorProfile::zero(nl.len()), 0);
        let mut b = NetlistBuilder::new("tiny");
        let x = b.input("x");
        b.output(x);
        sim.install(b.finish().unwrap());
    }
}
