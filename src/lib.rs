//! # spin-hall-security
//!
//! Root facade for the Rust reproduction of Patnaik, Rangarajan et al.,
//! *Advancing Hardware Security Using Polymorphic and Stochastic Spin-Hall
//! Effect Devices* (DATE 2018).
//!
//! Everything lives in [`gshe_core`] and the substrate crates it
//! re-exports; this crate exists so the repository root can host runnable
//! `examples/` and cross-crate integration `tests/`.
//!
//! ```
//! use spin_hall_security::prelude::*;
//!
//! let params = SwitchParams::table_i();
//! assert_eq!(params.beta(), 6.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gshe_core::*;
