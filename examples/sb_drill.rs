//! Superblue drill-down: runs one superblue grid cell (camouflage → SAT
//! attack) with instrumentation on and dumps the full metrics snapshot —
//! per-solve conflict/decision/propagation distributions, learnt-clause
//! LBD histogram, COI cone diagnostics, and simplification stats — as
//! JSON on stdout. Human-readable progress goes to stderr, so
//!
//! ```text
//! cargo run --release --example sb_drill -- sb5 64 auto > drill.json
//! ```
//!
//! leaves a clean machine-readable file. Arguments (all optional):
//! benchmark name (default `sb5`), scale divisor (default `64`), and a
//! `sat_simplify` mode — `auto`, `auto:<clauses>`, `on`, or `off`
//! (default `auto`) — for before/after comparisons of the solver's
//! pre/inprocessing pipeline on the same instance.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_hall_security::attacks::{CoiMode, SimplifyMode};
use spin_hall_security::logic::{suites, Topology};
use spin_hall_security::prelude::*;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "sb5".to_string());
    let scale: usize = args
        .next()
        .map(|s| s.parse().expect("scale must be an integer"))
        .unwrap_or(64);
    let simplify = args
        .next()
        .map(|s| SimplifyMode::parse(&s).expect("simplify mode: auto | auto:<clauses> | on | off"))
        .unwrap_or_default();

    let spec = suites::spec(&bench).expect("unknown benchmark");
    let nl = suites::benchmark_scaled_with(spec, scale, 1, Topology::Local);
    eprintln!(
        "{bench}/{scale}: {} nodes, {} inputs, {} outputs",
        nl.len(),
        nl.inputs().len(),
        nl.outputs().len()
    );

    // A thin slice of cloaked cells, as in the superblue streaming
    // campaign: local wiring keeps their cones narrow, so the COI
    // projection carves out a small instance and the per-solve metrics
    // describe cone-sized miters.
    let picks = select_gates(&nl, 0.0005, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).expect("camouflage");
    eprintln!(
        "cloaked {} cells ({} key bits), simplify={}",
        keyed.camo_gates().len(),
        keyed.key_len(),
        simplify.name()
    );

    spin_hall_security::obs::enable();
    let config = AttackConfig::with_timeout_secs(300)
        .with_coi_mode(CoiMode::AutoAt(3_000))
        .with_simplify(simplify);
    let mut oracle = NetlistOracle::new(&nl);
    let t = Instant::now();
    let out = sat_attack(&keyed, &mut oracle, &config);
    let dt = t.elapsed().as_secs_f64();

    eprintln!(
        "{:?} in {dt:.3}s: iters={} queries={} decisions={} conflicts={} \
         restarts={} elim_vars={} subsumed={} strengthened={} simplify_ms={:.1}",
        out.status,
        out.iterations,
        out.queries,
        out.solver_stats.decisions,
        out.solver_stats.conflicts,
        out.solver_stats.restarts,
        out.solver_stats.elim_vars,
        out.solver_stats.subsumed,
        out.solver_stats.strengthened,
        out.solver_stats.simplify_ns as f64 / 1e6,
    );
    assert_eq!(out.status, AttackStatus::Success, "drill cell must break");

    // Counters plus log2-bucket histograms (`sat.solve.*` per-solve
    // deltas, `sat.lbd`, `sat.simplify_ns`, `attack.coi_*`).
    println!("{}", spin_hall_security::obs::metrics_json());
}
