//! The paper's core experiment in miniature: camouflage a benchmark with
//! every scheme of Table IV, attack each with the SAT attack, and watch the
//! ordering — more cloaked functions, more attack effort.
//!
//! Run with `cargo run --release --example camouflage_and_attack`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_hall_security::logic::suites::{benchmark_scaled, spec};
use spin_hall_security::prelude::*;

fn main() {
    // A c7552-scale workload (scaled 1/20, interface proportional).
    let design = benchmark_scaled(spec("c7552").expect("known benchmark"), 20, 7);
    println!("workload: {design}");

    // The memorized selection protocol: the same 20% of gates for every
    // scheme.
    let picks = select_gates(&design, 0.20, 99);
    println!("protecting {} gates with each scheme\n", picks.len());
    println!(
        "{:<22} {:>6} {:>9} {:>8} {:>8}  result",
        "scheme", "#fn", "key bits", "DIPs", "time"
    );

    for scheme in CamoScheme::ALL {
        let mut rng = StdRng::seed_from_u64(99);
        let keyed = camouflage(&design, &picks, scheme, &mut rng).expect("camouflage");
        let mut oracle = NetlistOracle::new(&design);
        let outcome = sat_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(30));
        let verdict = match outcome.status {
            AttackStatus::Success => {
                let key = outcome.key.as_ref().expect("key on success");
                let v = verify_key(&design, &keyed, key).expect("verify");
                if v.functionally_equivalent {
                    "broken (functionally correct key)"
                } else {
                    "wrong key returned"
                }
            }
            AttackStatus::Timeout => "t-o (survived the budget)",
            AttackStatus::Inconsistent => "inconsistent",
            AttackStatus::ResourceExhausted => "solver failure",
        };
        println!(
            "{:<22} {:>6} {:>9} {:>8} {:>7.2}s  {verdict}",
            scheme.to_string(),
            scheme.cloaked_functions(),
            keyed.key_len(),
            outcome.iterations,
            outcome.elapsed.as_secs_f64(),
        );
    }
    println!("\nexpected: attack effort grows with the cloaked-function count;");
    println!("the all-16 GSHE primitive is the most expensive to break.");
}
