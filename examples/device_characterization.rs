//! Device-physics walkthrough: switching dynamics, delay distributions and
//! the read-out operating point (Figs. 3-4, Tables I-II).
//!
//! Run with `cargo run --release --example device_characterization`.

use spin_hall_security::device::readout::ReadoutCircuit;
use spin_hall_security::device::{
    DelayHistogram, GsheSwitch, MonteCarlo, MonteCarloConfig, SwitchParams,
};

fn main() {
    let params = SwitchParams::table_i();
    println!("GSHE switch, Table I parameters:");
    println!(
        "  G_P = {:.0} uS, G_AP = {:.1} uS, beta = {}, r = {:.0} Ohm",
        params.g_parallel() * 1e6,
        params.g_antiparallel() * 1e6,
        params.beta(),
        params.heavy_metal.resistance()
    );

    // A single deterministic write.
    let mut sw = GsheSwitch::new(params);
    let out = sw.write_deterministic(20e-6, true);
    println!(
        "\nsingle write at I_S = 20 uA: switched = {}, delay = {:.2} ns",
        out.switched,
        out.delay * 1e9
    );
    println!(
        "  W-NM state = {}, R-NM state = {} (anti-parallel pair)",
        sw.write_state(),
        sw.read_state()
    );

    // Fig. 4 in miniature.
    let mc = MonteCarlo::new(MonteCarloConfig {
        params,
        samples: 400,
        seed: 9,
        threads: 0,
    });
    println!("\nswitching-delay distributions (400 thermal samples each):");
    for i_s in [20e-6, 60e-6, 100e-6] {
        let h = DelayHistogram::from_samples(&mc.run(i_s), 30, 6e-9);
        println!(
            "  I_S = {:>3.0} uA: mean {:.2} ns, std {:.2} ns, p95 {:.2} ns",
            i_s * 1e6,
            h.mean * 1e9,
            h.std_dev * 1e9,
            h.quantile(0.95) * 1e9
        );
    }

    // Read-out operating point (Table II row).
    let circuit = ReadoutCircuit::new(&params);
    let pt = circuit.operating_point(20e-6);
    println!("\nread-out at I_S = 20 uA:");
    println!(
        "  V_SUP = {:.2} mV, V_OUT = {:.2} mV, I_OUT = {:.2} uA",
        pt.v_sup * 1e3,
        pt.v_out * 1e3,
        pt.i_out * 1e6
    );
    println!(
        "  P = {:.4} uW, E(1.55 ns) = {:.2} fJ  (paper: 0.2125 uW, 0.33 fJ)",
        pt.power * 1e6,
        pt.power * 1.55e-9 * 1e15
    );
}
