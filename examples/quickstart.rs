//! Quickstart: the GSHE polymorphic primitive in five minutes.
//!
//! Run with `cargo run --release --example quickstart`.

use spin_hall_security::prelude::*;
use spin_hall_security::GsheConfig;

fn main() {
    // 1. One physical device, sixteen functions. The primitive is
    //    reconfigured purely through terminal assignments — the layout
    //    never changes, which is what defeats optical reverse engineering.
    let mut primitive = GshePrimitive::new(GsheConfig::for_function(Bf2::NAND));
    println!("loaded function: {}", primitive.behavioral());
    println!(
        "NAND(1,1) through the device physics = {}",
        primitive.evaluate_device(true, true)
    );

    primitive.set_function(Bf2::XOR);
    println!("reconfigured at runtime to {}", primitive.behavioral());
    println!("XOR(1,0) = {}", primitive.evaluate_device(true, false));

    // 2. Protect a design: camouflage 30% of a small netlist with the
    //    all-16 primitive.
    let mut b = NetlistBuilder::new("demo");
    let x = b.input("x");
    let y = b.input("y");
    let z = b.input("z");
    let g1 = b.gate2("g1", Bf2::AND, x, y);
    let g2 = b.gate2("g2", Bf2::XOR, g1, z);
    let g3 = b.gate2("g3", Bf2::NOR, g1, g2);
    b.output(g2);
    b.output(g3);
    let design = b.finish().expect("valid netlist");

    let protected = spin_hall_security::protect(&design, 1.0, 42).expect("camouflage");
    println!(
        "\nprotected {} gates with {} key bits ({})",
        protected.report.protected(),
        protected.keyed.key_len(),
        protected.provisioning.description()
    );

    // 3. The correct key restores the design; a wrong key breaks it.
    let correct = protected.keyed.correct_key();
    let good = protected
        .keyed
        .evaluate_with_key(&[true, true, false], &correct)
        .unwrap();
    println!(
        "with the correct key : {:?} (original: {:?})",
        good,
        design.evaluate(&[true, true, false])
    );
    let wrong: Vec<bool> = correct.iter().map(|&b| !b).collect();
    let bad = protected
        .keyed
        .evaluate_with_key(&[true, true, false], &wrong)
        .unwrap();
    println!("with a wrong key     : {bad:?}");

    // 4. And the SAT attacker's view of the problem.
    let mut oracle = NetlistOracle::new(&design);
    let outcome = sat_attack(
        &protected.keyed,
        &mut oracle,
        &AttackConfig::with_timeout_secs(10),
    );
    println!(
        "\nSAT attack on this toy design: {:?} after {} DIPs ({} oracle queries)",
        outcome.status, outcome.iterations, outcome.queries
    );
    println!("(tiny circuits always fall — see table4/exp_hybrid for the real story)");
}
