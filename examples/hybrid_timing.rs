//! Sec. V-A hybrid study as a runnable demo: delay-aware CMOS->GSHE
//! replacement at zero delay overhead, then a SAT attack on the result.
//!
//! Run with `cargo run --release --example hybrid_timing`.

use spin_hall_security::logic::suites::{benchmark_scaled, spec};
use spin_hall_security::prelude::*;
use spin_hall_security::timing::path_delay_histogram;

fn main() {
    let design = benchmark_scaled(spec("sb18").expect("known benchmark"), 100, 13);
    let model = DelayModel::cmos_45nm();
    println!("workload: {design}");

    // The Fig. 6 view: biased path-delay profile.
    let delays = model.node_delays(&design);
    let hist = path_delay_histogram(&design, &delays, 60, 0.5e-9);
    println!(
        "path profile: {:.2e} paths, median {:.1} ns, critical ~{:.1} ns",
        hist.total_paths(),
        hist.quantile(0.5) * 1e9,
        hist.max_delay() * 1e9
    );

    // Zero-overhead replacement + camouflaging of exactly those gates.
    let (protected, hybrid) =
        spin_hall_security::protect_delay_aware(&design, &model, 21).expect("flow");
    println!(
        "\nreplaced {:.1}% of gates with GSHE primitives ({} cells, {} key bits)",
        hybrid.fraction * 100.0,
        protected.report.protected(),
        protected.keyed.key_len()
    );
    println!(
        "critical delay: {:.2} ns -> {:.2} ns (zero overhead enforced)",
        hybrid.baseline_critical * 1e9,
        hybrid.hybrid_critical * 1e9
    );
    println!(
        "static power:   {:.1} uW -> {:.1} uW (GSHE cells are cheaper)",
        hybrid.baseline_power * 1e6,
        hybrid.hybrid_power * 1e6
    );

    let mut oracle = NetlistOracle::new(&design);
    let outcome = sat_attack(
        &protected.keyed,
        &mut oracle,
        &AttackConfig::with_timeout_secs(20),
    );
    println!(
        "\nSAT attack on the hybrid design: {:?} after {} DIPs in {:.1} s",
        outcome.status,
        outcome.iterations,
        outcome.elapsed.as_secs_f64()
    );
    println!("paper: such designs \"cannot be resolved within 240 hours\".");
}
