//! Sec. V-B as a runnable demo: tune the GSHE switch into its stochastic
//! regime and watch the SAT attack lose its footing.
//!
//! Run with `cargo run --release --example stochastic_defense`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_hall_security::logic::{GeneratorConfig, NetlistGenerator};
use spin_hall_security::prelude::*;

fn main() {
    // Device level: the error rate is a *knob* — clock period vs the
    // Fig. 4 delay distribution.
    let params = SwitchParams::table_i();
    println!("error-rate knob (I_S = 20 uA, 500 Monte Carlo samples per point):");
    for t_clk in [1.0e-9, 2.0e-9, 4.0e-9] {
        let eps = error_rate_for_clock(&params, 20e-6, t_clk, 500, 3);
        println!(
            "  clock {:.1} ns -> per-device error rate {:.1}%",
            t_clk * 1e9,
            eps * 100.0
        );
    }

    // Logic level: a camouflaged design whose oracle is 95% accurate.
    let design = NetlistGenerator::new(GeneratorConfig::new("w", 12, 6, 150).with_seed(5))
        .expect("valid config")
        .generate();
    let picks = select_gates(&design, 0.4, 17);
    let mut rng = StdRng::seed_from_u64(17);
    let keyed = camouflage(&design, &picks, CamoScheme::GsheAll16, &mut rng).expect("camouflage");

    println!(
        "\nSAT attack vs oracle accuracy ({} camo cells, {} key bits):",
        picks.len(),
        keyed.key_len()
    );
    for accuracy in [1.0, 0.95, 0.90] {
        let eps = 1.0 - accuracy;
        let outcome = if eps == 0.0 {
            let mut oracle = NetlistOracle::new(&design);
            sat_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(20))
        } else {
            let mut oracle = StochasticOracle::new(&keyed, eps, 11);
            sat_attack(&keyed, &mut oracle, &AttackConfig::with_timeout_secs(20))
        };
        let verdict = match outcome.status {
            AttackStatus::Success => {
                let v = verify_key(&design, &keyed, outcome.key.as_ref().expect("key"))
                    .expect("verify");
                if v.functionally_equivalent {
                    "correct key extracted".to_string()
                } else {
                    format!(
                        "WRONG key extracted (output error rate {:.1}%)",
                        v.sampled_error_rate * 100.0
                    )
                }
            }
            other => format!("{other:?} — attack collapsed"),
        };
        println!(
            "  accuracy {:>4.0}%: {} DIPs, {}",
            accuracy * 100.0,
            outcome.iterations,
            verdict
        );
    }
    println!("\npaper: \"most if not all proposed SAT attacks will fail in such");
    println!("scenarios ... distinguishing incorrect patterns from correct ones is");
    println!("difficult when only given a probabilistic black-box oracle.\"");
}
