//! Quick wall-clock harness for the s38584 batched SAT attack (the
//! `batched_dip_s38584` criterion bench's workload, without criterion's
//! warmup overhead). Used to compare solver revisions during development.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_hall_security::prelude::*;
use std::time::Instant;

fn main() {
    let spec = spin_hall_security::logic::suites::spec("s38584").expect("benchmark");
    let nl = spin_hall_security::logic::suites::benchmark_scaled(spec, 40, 1);
    let picks = select_gates(&nl, 0.05, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let keyed = camouflage(&nl, &picks, CamoScheme::GsheAll16, &mut rng).expect("camouflage");

    for width in [1usize, 16] {
        let config = AttackConfig::with_timeout_secs(120).with_dip_batch(width);
        let reps = 3;
        let mut best = f64::MAX;
        for _ in 0..reps {
            let mut oracle = NetlistOracle::new(&nl);
            let t = Instant::now();
            let out = sat_attack(&keyed, &mut oracle, &config);
            let dt = t.elapsed().as_secs_f64();
            assert_eq!(out.status, AttackStatus::Success);
            best = best.min(dt);
            println!(
                "width {width}: {dt:.3}s  iters={} decisions={} conflicts={} learnts={} deleted={} restarts={}",
                out.iterations,
                out.solver_stats.decisions,
                out.solver_stats.conflicts,
                out.solver_stats.learnts,
                out.solver_stats.deleted,
                out.solver_stats.restarts,
            );
        }
        println!("width {width}: best {best:.3}s");
    }
}
